//! Hello-message bookkeeping.
//!
//! Paper §III-B: nodes send hello messages at least every second. A hello
//! includes (a) the sender's node ID, (b) the IDs of nodes it heard in the
//! past 5 seconds, (c) its query strings, and (d) the URIs of the files it is
//! downloading. From received hellos each node knows which neighbors can
//! receive its messages, and — because a hello carries the sender's own heard
//! set — can reconstruct the local connectivity graph to compute cliques.
//!
//! This crate keeps the beacon generic over the application payload `P` (MBT
//! puts query strings and downloading URIs there) so the substrate stays
//! protocol-agnostic.

use std::collections::BTreeMap;

use dtn_trace::{NodeId, SimDuration, SimTime};

use crate::clique::NeighborGraph;

/// How far back a heard node is still considered a neighbor (the paper's
/// 5-second hello window).
pub const HELLO_WINDOW: SimDuration = SimDuration::from_secs(5);

/// A hello beacon: the sender, who the sender recently heard, and an
/// application payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloBeacon<P> {
    /// Sending node.
    pub sender: NodeId,
    /// Node IDs the sender heard within the hello window.
    pub heard: Vec<NodeId>,
    /// Application payload (e.g. query strings and downloading URIs).
    pub payload: P,
}

impl<P> HelloBeacon<P> {
    /// Creates a beacon.
    pub fn new(sender: NodeId, heard: Vec<NodeId>, payload: P) -> Self {
        HelloBeacon {
            sender,
            heard,
            payload,
        }
    }
}

/// One node's view of its neighborhood, built from received hello beacons.
///
/// Records when each peer was last heard and that peer's own heard set, and
/// can derive the local [`NeighborGraph`] used for clique computation.
///
/// # Example
///
/// ```
/// use dtn_sim::{HelloBeacon, NeighborTable};
/// use dtn_trace::{NodeId, SimTime};
///
/// let me = NodeId::new(0);
/// let mut table = NeighborTable::new(me);
/// table.record(&HelloBeacon::new(NodeId::new(1), vec![me], ()), SimTime::from_secs(10));
/// assert_eq!(table.neighbors(SimTime::from_secs(12)), vec![NodeId::new(1)]);
/// assert!(table.neighbors(SimTime::from_secs(60)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    owner: NodeId,
    last_heard: BTreeMap<NodeId, SimTime>,
    peer_heard: BTreeMap<NodeId, Vec<NodeId>>,
}

impl NeighborTable {
    /// Creates an empty table owned by `owner`.
    pub fn new(owner: NodeId) -> Self {
        NeighborTable {
            owner,
            last_heard: BTreeMap::new(),
            peer_heard: BTreeMap::new(),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Records a received beacon at time `now`. Beacons from the owner itself
    /// are ignored.
    pub fn record<P>(&mut self, beacon: &HelloBeacon<P>, now: SimTime) {
        if beacon.sender == self.owner {
            return;
        }
        self.last_heard.insert(beacon.sender, now);
        self.peer_heard.insert(beacon.sender, beacon.heard.clone());
    }

    /// Neighbors heard within [`HELLO_WINDOW`] of `now`, sorted.
    pub fn neighbors(&self, now: SimTime) -> Vec<NodeId> {
        self.last_heard
            .iter()
            .filter(|&(_, &at)| {
                now.checked_duration_since(at)
                    .is_some_and(|d| d <= HELLO_WINDOW)
                    || at > now
            })
            .map(|(&n, _)| n)
            .collect()
    }

    /// Drops entries older than [`HELLO_WINDOW`].
    pub fn prune(&mut self, now: SimTime) {
        let stale: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|&(_, &at)| {
                now.checked_duration_since(at)
                    .is_some_and(|d| d > HELLO_WINDOW)
            })
            .map(|(&n, _)| n)
            .collect();
        for n in stale {
            self.last_heard.remove(&n);
            self.peer_heard.remove(&n);
        }
    }

    /// Builds the local connectivity graph at `now`: edges from the owner to
    /// each live neighbor, plus edges among neighbors as advertised in their
    /// heard sets (an edge between two peers requires at least one of them to
    /// have reported hearing the other).
    pub fn local_graph(&self, now: SimTime) -> NeighborGraph {
        let mut g = NeighborGraph::new();
        let live = self.neighbors(now);
        for &peer in &live {
            g.connect(self.owner, peer);
        }
        for &peer in &live {
            if let Some(heard) = self.peer_heard.get(&peer) {
                for &other in heard {
                    if other != self.owner && live.contains(&other) {
                        g.connect(peer, other);
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn records_and_expires_neighbors() {
        let mut table = NeighborTable::new(n(0));
        table.record(&HelloBeacon::new(n(1), vec![], ()), t(100));
        assert_eq!(table.neighbors(t(100)), vec![n(1)]);
        assert_eq!(table.neighbors(t(105)), vec![n(1)]);
        assert!(table.neighbors(t(106)).is_empty());
    }

    #[test]
    fn ignores_own_beacons() {
        let mut table = NeighborTable::new(n(0));
        table.record(&HelloBeacon::new(n(0), vec![n(1)], ()), t(10));
        assert!(table.neighbors(t(10)).is_empty());
    }

    #[test]
    fn newer_beacon_refreshes() {
        let mut table = NeighborTable::new(n(0));
        table.record(&HelloBeacon::new(n(1), vec![], ()), t(100));
        table.record(&HelloBeacon::new(n(1), vec![], ()), t(104));
        assert_eq!(table.neighbors(t(108)), vec![n(1)]);
    }

    #[test]
    fn prune_drops_stale_entries() {
        let mut table = NeighborTable::new(n(0));
        table.record(&HelloBeacon::new(n(1), vec![], ()), t(100));
        table.record(&HelloBeacon::new(n(2), vec![], ()), t(200));
        table.prune(t(203));
        assert_eq!(table.neighbors(t(203)), vec![n(2)]);
    }

    #[test]
    fn local_graph_includes_peer_links() {
        let mut table = NeighborTable::new(n(0));
        table.record(&HelloBeacon::new(n(1), vec![n(0), n(2)], ()), t(100));
        table.record(&HelloBeacon::new(n(2), vec![n(0)], ()), t(100));
        let g = table.local_graph(t(102));
        assert!(g.connected(n(0), n(1)));
        assert!(g.connected(n(0), n(2)));
        assert!(g.connected(n(1), n(2)));
        // The triangle is one clique.
        assert_eq!(g.maximal_cliques().len(), 1);
    }

    #[test]
    fn local_graph_excludes_dead_peers() {
        let mut table = NeighborTable::new(n(0));
        table.record(&HelloBeacon::new(n(1), vec![n(2)], ()), t(100));
        // n2 itself never heard directly, and n1's report names it; n2 is not
        // live so no edge involving n2 appears.
        let g = table.local_graph(t(102));
        assert!(g.connected(n(0), n(1)));
        assert!(!g.connected(n(1), n(2)));
    }

    #[test]
    fn payload_carried_through() {
        let beacon = HelloBeacon::new(n(1), vec![], vec!["query".to_string()]);
        assert_eq!(beacon.payload[0], "query");
    }
}
