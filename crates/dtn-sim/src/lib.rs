//! Discrete-event simulation substrate for delay tolerant networks.
//!
//! This crate provides the machinery the MBT protocols run on:
//!
//! - a deterministic discrete-event [`engine`] that drives a handler over a
//!   [`dtn_trace::ContactTrace`] interleaved with user-scheduled events,
//! - [`clique`] detection (Bron–Kerbosch maximal cliques over a neighbor
//!   graph built from hello messages) as required by the paper's
//!   broadcast-based file download (§V),
//! - the [`channel`] capacity models contrasting broadcast and pair-wise
//!   transmission, plus per-contact transfer budgets,
//! - [`hello`]-message bookkeeping (§III-B),
//! - delivery-ratio [`metrics`] and deterministic [`rng`] utilities,
//! - deterministic fault injection ([`faults`]) for robustness experiments,
//!   and
//! - always-on observability counters and phase spans ([`telemetry`]) that
//!   feed the perf-report/bench tooling without perturbing simulation
//!   output.
//!
//! # Example
//!
//! ```
//! use dtn_sim::engine::{SimHandler, Simulator, SimCtx};
//! use dtn_trace::{Contact, ContactTrace, NodeId, SimTime};
//!
//! struct CountContacts(usize);
//!
//! impl SimHandler for CountContacts {
//!     fn on_contact_start(&mut self, _ctx: &mut SimCtx<'_>, _contact: &Contact) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let trace: ContactTrace = vec![
//!     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(1), SimTime::from_secs(2))?,
//! ].into_iter().collect();
//!
//! let mut handler = CountContacts(0);
//! Simulator::new(&trace).run(&mut handler);
//! assert_eq!(handler.0, 1);
//! # Ok::<(), dtn_trace::ContactError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod clique;
pub mod engine;
pub mod event;
pub mod faults;
pub mod hello;
pub mod histogram;
pub mod metrics;
pub mod rng;
pub mod telemetry;

pub use channel::{broadcast_per_node_capacity, pairwise_per_node_capacity, ContactBudget};
pub use clique::NeighborGraph;
pub use engine::{SimCtx, SimHandler, Simulator, StreamSimulator};
pub use event::{Event, EventQueue};
pub use faults::{FaultKind, FaultPlan};
pub use hello::{HelloBeacon, NeighborTable};
pub use metrics::DeliveryStats;
pub use telemetry::{Counters, Phase, PhaseTimes, Telemetry};
