//! Simulation events and the deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dtn_trace::SimTime;

/// A simulation event.
///
/// Contact events are injected by the [`Simulator`](crate::Simulator) from
/// the trace; [`Event::Scheduled`] events are created by handlers via
/// [`SimCtx::schedule`](crate::SimCtx::schedule) and carry a user-chosen tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A contact (identified by its index in the trace) begins.
    ContactStart {
        /// Index into the trace's contact slice.
        contact: usize,
    },
    /// A contact (identified by its index in the trace) ends.
    ContactEnd {
        /// Index into the trace's contact slice.
        contact: usize,
    },
    /// A user-scheduled event with an opaque tag.
    Scheduled {
        /// Handler-defined discriminator (e.g. "daily noon tick").
        tag: u64,
    },
}

impl Event {
    /// Rank used for same-instant ordering: contact ends fire first (so state
    /// from a closing contact is torn down), then scheduled events, then
    /// contact starts.
    fn rank(&self) -> u8 {
        match self {
            Event::ContactEnd { .. } => 0,
            Event::Scheduled { .. } => 1,
            Event::ContactStart { .. } => 2,
        }
    }

    /// Secondary key for deterministic ordering among same-rank events.
    fn key(&self) -> u64 {
        match self {
            Event::ContactStart { contact } | Event::ContactEnd { contact } => *contact as u64,
            Event::Scheduled { tag } => *tag,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct QueuedEvent {
    time: SimTime,
    rank: u8,
    key: u64,
    seq: u64,
    event: Event,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then(other.rank.cmp(&self.rank))
            .then(other.key.cmp(&self.key))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Ties at the same instant are broken by event kind (ends before scheduled
/// before starts), then by a stable key, then by insertion order — so two
/// runs over the same inputs pop events in exactly the same order.
///
/// # Example
///
/// ```
/// use dtn_sim::{Event, EventQueue};
/// use dtn_trace::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(10), Event::Scheduled { tag: 1 });
/// q.push(SimTime::from_secs(5), Event::Scheduled { tag: 2 });
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(5));
/// assert_eq!(e, Event::Scheduled { tag: 2 });
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let q = QueuedEvent {
            time,
            rank: event.rank(),
            key: event.key(),
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        self.heap.push(q);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|q| (q.time, q.event))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), Event::Scheduled { tag: 3 });
        q.push(t(10), Event::Scheduled { tag: 1 });
        q.push(t(20), Event::Scheduled { tag: 2 });
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Scheduled { tag } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn ends_fire_before_starts_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(t(10), Event::ContactStart { contact: 0 });
        q.push(t(10), Event::ContactEnd { contact: 1 });
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, Event::ContactEnd { contact: 1 });
    }

    #[test]
    fn scheduled_fires_between_ends_and_starts() {
        let mut q = EventQueue::new();
        q.push(t(10), Event::ContactStart { contact: 0 });
        q.push(t(10), Event::Scheduled { tag: 9 });
        q.push(t(10), Event::ContactEnd { contact: 1 });
        let order: Vec<Event> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                Event::ContactEnd { contact: 1 },
                Event::Scheduled { tag: 9 },
                Event::ContactStart { contact: 0 },
            ]
        );
    }

    #[test]
    fn same_kind_ties_broken_by_key_then_insertion() {
        let mut q = EventQueue::new();
        q.push(t(10), Event::ContactStart { contact: 5 });
        q.push(t(10), Event::ContactStart { contact: 2 });
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, Event::ContactStart { contact: 2 });
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(4), Event::Scheduled { tag: 0 });
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn identical_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(1), Event::Scheduled { tag: 7 });
        q.push(t(1), Event::Scheduled { tag: 7 });
        assert_eq!(q.pop().unwrap().1, Event::Scheduled { tag: 7 });
        assert_eq!(q.len(), 1);
    }
}
