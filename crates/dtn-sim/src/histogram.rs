//! Simple duration histograms for delay distributions.
//!
//! Delivery delays in a DTN are heavy-tailed; means alone mislead. This
//! histogram records [`SimDuration`] samples and answers quantile and
//! CDF-style queries, backing the delay reporting of the routing and MBT
//! simulations.

use dtn_trace::SimDuration;

/// A collection of duration samples with quantile queries.
///
/// Samples are kept exactly (delays per run number in the thousands at
/// most); queries sort lazily.
///
/// # Example
///
/// ```
/// use dtn_sim::histogram::DelayHistogram;
/// use dtn_trace::SimDuration;
///
/// let mut h = DelayHistogram::new();
/// for secs in [10, 20, 30, 40, 50] {
///     h.record(SimDuration::from_secs(secs));
/// }
/// assert_eq!(h.quantile(0.5), Some(SimDuration::from_secs(30)));
/// assert_eq!(h.max(), Some(SimDuration::from_secs(50)));
/// assert!((h.fraction_within(SimDuration::from_secs(25)) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelayHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl DelayHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DelayHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_secs());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted_samples(&mut self) -> &[u64] {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        &self.samples
    }

    /// The `q`-quantile (nearest-rank), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let s = self.sorted_samples();
        if s.is_empty() {
            return None;
        }
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        Some(SimDuration::from_secs(s[rank - 1]))
    }

    /// The median.
    pub fn median(&mut self) -> Option<SimDuration> {
        self.quantile(0.5)
    }

    /// The maximum sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples
            .iter()
            .max()
            .map(|&s| SimDuration::from_secs(s))
    }

    /// The mean in seconds.
    pub fn mean_secs(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
    }

    /// Fraction of samples ≤ `bound` (a point of the CDF). 0 when empty.
    pub fn fraction_within(&self, bound: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let within = self
            .samples
            .iter()
            .filter(|&&s| s <= bound.as_secs())
            .count();
        within as f64 / self.samples.len() as f64
    }
}

impl Extend<SimDuration> for DelayHistogram {
    fn extend<I: IntoIterator<Item = SimDuration>>(&mut self, iter: I) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for DelayHistogram {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        let mut h = DelayHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(secs: &[u64]) -> DelayHistogram {
        secs.iter().map(|&s| SimDuration::from_secs(s)).collect()
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = hist(&[50, 10, 30, 20, 40]);
        assert_eq!(h.quantile(0.0), Some(SimDuration::from_secs(10)));
        assert_eq!(h.quantile(0.2), Some(SimDuration::from_secs(10)));
        assert_eq!(h.median(), Some(SimDuration::from_secs(30)));
        assert_eq!(h.quantile(0.9), Some(SimDuration::from_secs(50)));
        assert_eq!(h.quantile(1.0), Some(SimDuration::from_secs(50)));
    }

    #[test]
    fn empty_histogram() {
        let mut h = DelayHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), None);
        assert_eq!(h.mean_secs(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.fraction_within(SimDuration::from_secs(100)), 0.0);
    }

    #[test]
    fn mean_and_max() {
        let h = hist(&[10, 20, 60]);
        assert_eq!(h.mean_secs(), Some(30.0));
        assert_eq!(h.max(), Some(SimDuration::from_secs(60)));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn cdf_fractions() {
        let h = hist(&[10, 20, 30, 40]);
        assert_eq!(h.fraction_within(SimDuration::from_secs(9)), 0.0);
        assert_eq!(h.fraction_within(SimDuration::from_secs(20)), 0.5);
        assert_eq!(h.fraction_within(SimDuration::from_secs(100)), 1.0);
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut h = hist(&[30, 10]);
        assert_eq!(h.median(), Some(SimDuration::from_secs(10)));
        h.record(SimDuration::from_secs(5));
        assert_eq!(h.quantile(0.0), Some(SimDuration::from_secs(5)));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let mut h = hist(&[1]);
        let _ = h.quantile(1.5);
    }
}
