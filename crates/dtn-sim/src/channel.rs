//! Wireless channel capacity models and per-contact transfer budgets.
//!
//! Paper §V: for a clique of `n` mutually-reachable nodes,
//!
//! - **broadcast-based** communication lets one node send while all `n - 1`
//!   others receive, so the per-node useful communication bandwidth is
//!   `(n - 1) / n` — *increasing* in `n`;
//! - **pair-wise** communication serializes to one sender/receiver pair at a
//!   time (geometrically close links contend), so per-node bandwidth is
//!   `1 / n` — *decreasing* in `n`.
//!
//! [`simulate_receptions`] complements the closed forms with a slot-level
//! counting simulation used by the `capacity` experiment, and
//! [`ContactBudget`] implements the evaluation model's fixed number of
//! metadata and files exchanged per contact (§VI-A).

use std::error::Error;
use std::fmt;

/// Per-node useful bandwidth share under broadcast in a clique of `n` nodes:
/// `(n - 1) / n`. Returns 0 for `n < 2`.
///
/// # Example
///
/// ```
/// let c4 = dtn_sim::broadcast_per_node_capacity(4);
/// let c8 = dtn_sim::broadcast_per_node_capacity(8);
/// assert!(c8 > c4, "broadcast capacity grows with density");
/// ```
pub fn broadcast_per_node_capacity(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    (n as f64 - 1.0) / n as f64
}

/// Per-node useful bandwidth share under pair-wise transmission in a clique
/// of `n` nodes: `1 / n`. Returns 0 for `n < 2`.
///
/// # Example
///
/// ```
/// let c4 = dtn_sim::pairwise_per_node_capacity(4);
/// let c8 = dtn_sim::pairwise_per_node_capacity(8);
/// assert!(c8 < c4, "pair-wise capacity shrinks with density");
/// ```
pub fn pairwise_per_node_capacity(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    1.0 / n as f64
}

/// Expected per-node useful bandwidth under broadcast when each frame is
/// independently lost with probability `loss`: `(1 - loss) * (n - 1) / n`.
/// Returns 0 for `n < 2`; `loss` is clamped to `[0, 1]`.
///
/// # Example
///
/// ```
/// let clean = dtn_sim::channel::lossy_broadcast_capacity(8, 0.0);
/// let degraded = dtn_sim::channel::lossy_broadcast_capacity(8, 0.25);
/// assert_eq!(clean, dtn_sim::broadcast_per_node_capacity(8));
/// assert!(degraded < clean);
/// ```
pub fn lossy_broadcast_capacity(n: usize, loss: f64) -> f64 {
    broadcast_per_node_capacity(n) * (1.0 - loss.clamp(0.0, 1.0))
}

/// Nominal per-frame link-layer overhead in bytes (MAC + network headers),
/// charged once per broadcast reception by the byte-accounting telemetry.
/// The exact figure only scales `bytes_moved` reports; nothing in the
/// simulation reads it back.
pub const FRAME_HEADER_BYTES: u64 = 64;

/// On-air bytes of one received frame carrying `payload` application bytes:
/// payload plus [`FRAME_HEADER_BYTES`], saturating on overflow.
pub fn frame_bytes(payload: u64) -> u64 {
    payload.saturating_add(FRAME_HEADER_BYTES)
}

/// Scales a per-contact transfer allowance by the surviving fraction of a
/// truncated contact: `floor(slots * keep)`, with `keep` clamped to `[0, 1]`.
/// A keep fraction of exactly 1 is the identity.
pub fn truncated_budget(slots: u32, keep: f64) -> u32 {
    let keep = keep.clamp(0.0, 1.0);
    if keep >= 1.0 {
        return slots;
    }
    (f64::from(slots) * keep).floor() as u32
}

/// Transmission mode within a clique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransmissionMode {
    /// One sender per slot; every other clique member receives the frame.
    Broadcast,
    /// One sender/receiver pair per slot; exactly one node receives.
    Pairwise,
}

/// Counts total useful receptions in a clique of `n` nodes over `slots`
/// transmission slots under the given mode.
///
/// Broadcast yields `slots * (n - 1)` receptions; pair-wise yields `slots`.
/// Cliques smaller than 2 yield zero.
pub fn simulate_receptions(mode: TransmissionMode, n: usize, slots: u64) -> u64 {
    if n < 2 {
        return 0;
    }
    match mode {
        TransmissionMode::Broadcast => slots * (n as u64 - 1),
        TransmissionMode::Pairwise => slots,
    }
}

/// Error returned when drawing from an exhausted [`ContactBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which resource ran out.
    pub resource: BudgetResource,
}

/// The two budgeted resources of the paper's per-contact transfer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetResource {
    /// Metadata slots.
    Metadata,
    /// File(-piece) slots.
    Files,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            BudgetResource::Metadata => write!(f, "metadata budget exhausted for this contact"),
            BudgetResource::Files => write!(f, "file budget exhausted for this contact"),
        }
    }
}

impl Error for BudgetExhausted {}

/// The fixed per-contact transfer allowance of the paper's simulation model:
/// "in each contact, nodes can send or receive a fixed number of metadata and
/// files" (§VI-A).
///
/// # Example
///
/// ```
/// use dtn_sim::ContactBudget;
///
/// let mut budget = ContactBudget::new(2, 1);
/// assert!(budget.try_send_metadata().is_ok());
/// assert!(budget.try_send_metadata().is_ok());
/// assert!(budget.try_send_metadata().is_err());
/// assert!(budget.try_send_file().is_ok());
/// assert!(budget.try_send_file().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactBudget {
    metadata_left: u32,
    files_left: u32,
    metadata_cap: u32,
    files_cap: u32,
}

impl ContactBudget {
    /// Creates a budget of `metadata` metadata slots and `files` file slots.
    pub fn new(metadata: u32, files: u32) -> Self {
        ContactBudget {
            metadata_left: metadata,
            files_left: files,
            metadata_cap: metadata,
            files_cap: files,
        }
    }

    /// Remaining metadata slots.
    pub fn metadata_left(&self) -> u32 {
        self.metadata_left
    }

    /// Remaining file slots.
    pub fn files_left(&self) -> u32 {
        self.files_left
    }

    /// Consumes one metadata slot.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when no metadata slots remain.
    pub fn try_send_metadata(&mut self) -> Result<(), BudgetExhausted> {
        if self.metadata_left == 0 {
            return Err(BudgetExhausted {
                resource: BudgetResource::Metadata,
            });
        }
        self.metadata_left -= 1;
        Ok(())
    }

    /// Consumes one file slot.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when no file slots remain.
    pub fn try_send_file(&mut self) -> Result<(), BudgetExhausted> {
        if self.files_left == 0 {
            return Err(BudgetExhausted {
                resource: BudgetResource::Files,
            });
        }
        self.files_left -= 1;
        Ok(())
    }

    /// Restores the budget to its initial allowance (for reuse across
    /// contacts).
    pub fn reset(&mut self) {
        self.metadata_left = self.metadata_cap;
        self.files_left = self.files_cap;
    }

    /// True if both resources are exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.metadata_left == 0 && self.files_left == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_capacity_increases_with_density() {
        let caps: Vec<f64> = (2..10).map(broadcast_per_node_capacity).collect();
        assert!(caps.windows(2).all(|w| w[1] > w[0]));
        assert!((broadcast_per_node_capacity(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pairwise_capacity_decreases_with_density() {
        let caps: Vec<f64> = (2..10).map(pairwise_per_node_capacity).collect();
        assert!(caps.windows(2).all(|w| w[1] < w[0]));
        assert!((pairwise_per_node_capacity(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacities_equal_at_n2_diverge_after() {
        assert_eq!(
            broadcast_per_node_capacity(2),
            pairwise_per_node_capacity(2)
        );
        assert!(broadcast_per_node_capacity(3) > pairwise_per_node_capacity(3));
    }

    #[test]
    fn degenerate_cliques_have_zero_capacity() {
        assert_eq!(broadcast_per_node_capacity(0), 0.0);
        assert_eq!(broadcast_per_node_capacity(1), 0.0);
        assert_eq!(pairwise_per_node_capacity(1), 0.0);
    }

    #[test]
    fn simulated_receptions_match_closed_form() {
        for n in 2..12usize {
            let slots = 100;
            let b = simulate_receptions(TransmissionMode::Broadcast, n, slots);
            let p = simulate_receptions(TransmissionMode::Pairwise, n, slots);
            // Per-node per-slot reception rates equal the capacity formulas.
            let b_rate = b as f64 / (n as f64 * slots as f64);
            let p_rate = p as f64 / (n as f64 * slots as f64);
            assert!((b_rate - broadcast_per_node_capacity(n)).abs() < 1e-12);
            assert!((p_rate - pairwise_per_node_capacity(n)).abs() < 1e-12);
        }
    }

    #[test]
    fn simulate_receptions_degenerate() {
        assert_eq!(simulate_receptions(TransmissionMode::Broadcast, 1, 10), 0);
        assert_eq!(simulate_receptions(TransmissionMode::Pairwise, 0, 10), 0);
    }

    #[test]
    fn lossy_capacity_interpolates_to_zero() {
        assert_eq!(
            lossy_broadcast_capacity(8, 0.0),
            broadcast_per_node_capacity(8)
        );
        assert_eq!(lossy_broadcast_capacity(8, 1.0), 0.0);
        let half = lossy_broadcast_capacity(8, 0.5);
        assert!((half - broadcast_per_node_capacity(8) / 2.0).abs() < 1e-12);
        // Out-of-range losses clamp instead of producing negative capacity.
        assert_eq!(lossy_broadcast_capacity(8, 2.0), 0.0);
    }

    #[test]
    fn frame_bytes_add_header_and_saturate() {
        assert_eq!(frame_bytes(0), FRAME_HEADER_BYTES);
        assert_eq!(frame_bytes(1000), 1000 + FRAME_HEADER_BYTES);
        assert_eq!(frame_bytes(u64::MAX), u64::MAX);
    }

    #[test]
    fn truncated_budget_scales_and_keeps_identity() {
        assert_eq!(truncated_budget(20, 1.0), 20);
        assert_eq!(truncated_budget(20, 0.5), 10);
        assert_eq!(truncated_budget(20, 0.0), 0);
        assert_eq!(truncated_budget(3, 0.9), 2);
        assert_eq!(truncated_budget(20, 1.5), 20);
    }

    #[test]
    fn budget_tracks_both_resources() {
        let mut b = ContactBudget::new(1, 2);
        assert_eq!(b.metadata_left(), 1);
        b.try_send_metadata().unwrap();
        let err = b.try_send_metadata().unwrap_err();
        assert_eq!(err.resource, BudgetResource::Metadata);
        b.try_send_file().unwrap();
        b.try_send_file().unwrap();
        assert!(b.is_exhausted());
    }

    #[test]
    fn budget_reset_restores_allowance() {
        let mut b = ContactBudget::new(1, 1);
        b.try_send_metadata().unwrap();
        b.try_send_file().unwrap();
        b.reset();
        assert_eq!(b.metadata_left(), 1);
        assert_eq!(b.files_left(), 1);
    }

    #[test]
    fn zero_budget_rejects_immediately() {
        let mut b = ContactBudget::new(0, 0);
        assert!(b.try_send_metadata().is_err());
        assert!(b.try_send_file().is_err());
        assert!(b.is_exhausted());
    }

    #[test]
    fn error_display_names_resource() {
        let mut b = ContactBudget::new(0, 0);
        let e = b.try_send_file().unwrap_err();
        assert!(e.to_string().contains("file"));
    }
}
