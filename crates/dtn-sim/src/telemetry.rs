//! Always-on observability: cheap event counters and per-phase wall-clock
//! spans.
//!
//! The engine and the MBT contact protocol already compute everything worth
//! measuring — contacts processed, hello exchanges, clique formations,
//! broadcast frames sent and lost, metadata and file pieces transferred,
//! bytes moved — and previously threw it away. [`Counters`] keeps those
//! totals, [`PhaseTimes`] keeps wall-clock time per [`Phase`], and
//! [`Telemetry`] bundles both for aggregation up the stack (per simulation
//! run, then per sweep cell, merged in grid order by the experiment
//! executor).
//!
//! # Determinism contract
//!
//! Counters are pure functions of the simulation's deterministic event
//! stream: two runs with the same trace, parameters, and seed produce
//! **byte-identical counter totals**, regardless of thread count, because
//! per-cell counters merge in grid order (and the merge operations — `u64`
//! addition for totals, maximum for the `peak_resident_*` counters — are
//! commutative and associative besides). Wall-clock spans are observational only — they
//! are never fed back into simulation state, so enabling telemetry cannot
//! perturb simulation output. `tests/parallel_determinism.rs` pins both
//! properties.
//!
//! # Example
//!
//! ```
//! use dtn_sim::telemetry::{Counters, Phase, Telemetry};
//!
//! let mut total = Telemetry::default();
//! let mut cell = Telemetry::default();
//! cell.counters.contacts = 3;
//! cell.counters.frames_sent = 7;
//! total.merge(&cell);
//! total.merge(&cell);
//! assert_eq!(total.counters.contacts, 6);
//! assert_eq!(total.counters.frames_sent, 14);
//! assert_eq!(total.phases.get(Phase::Discovery).as_nanos(), 0);
//! ```

use std::time::{Duration, Instant};

/// Deterministic event counters accumulated by a simulation run.
///
/// Every field counts events of the deterministic simulation itself, so the
/// totals are reproducible bit-for-bit (see the module docs). All counts are
/// contact-level unless noted; Internet synchronisation sessions are not
/// metered here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Contacts processed (at least two alive participants).
    pub contacts: u64,
    /// Hello beacons exchanged: one per participant per processed contact.
    pub hello_exchanges: u64,
    /// Contacts that formed a clique of three or more participants.
    pub clique_formations: u64,
    /// Broadcast frames transmitted (metadata and file broadcasts).
    pub frames_sent: u64,
    /// Receptions dropped by injected frame loss.
    pub frames_lost: u64,
    /// Metadata records successfully received and stored (non-duplicate),
    /// including metadata riding along with file broadcasts.
    pub metadata_transferred: u64,
    /// File pieces successfully received as part of completed file
    /// broadcasts.
    pub pieces_transferred: u64,
    /// Application bytes successfully moved: metadata wire bytes plus file
    /// content bytes, counted per reception.
    pub bytes_moved: u64,
    /// File receptions discarded by checksum verification after injected
    /// piece corruption.
    pub corrupt_receptions: u64,
    /// Hello snapshots whose wanted-URI list was served from the node's
    /// memoized cache (no recomputation). Deterministic: the hit/miss
    /// pattern is a pure function of the event stream.
    pub wanted_cache_hits: u64,
    /// Inverted-index lookups performed to (re)compute wanted-URI lists on
    /// cache misses (one per own query per miss).
    pub index_lookups: u64,
    /// On-disk trace shards loaded by streaming replay. Zero for fully
    /// in-memory runs. Additive on merge: total shard loads across all
    /// streaming passes.
    pub shards_loaded: u64,
    /// Shards whose decode was started ahead of consumption by pipelined
    /// streaming replay. Zero for in-memory runs and serial streams.
    /// Additive on merge, like [`Counters::shards_loaded`].
    pub shards_prefetched: u64,
    /// Peak number of trace contacts resident in memory at once across the
    /// runs merged so far. Merges by **maximum**, not addition — residency
    /// is concurrent state, so the sweep-wide figure is the worst single
    /// run, which keeps the value independent of `--jobs` and cell count.
    pub peak_resident_contacts: u64,
    /// Node states materialized by the lazy node arena: one per node that
    /// actually appeared in a contact, an Internet session, or seeded
    /// content. Additive on merge.
    pub nodes_instantiated: u64,
    /// Peak number of node states resident in the arena at once (lazy
    /// instantiation minus cold-node eviction). Merges by **maximum**, like
    /// [`Counters::peak_resident_contacts`].
    pub peak_resident_nodes: u64,
    /// Peak number of evicted (cold) nodes holding residue in the arena's
    /// residue store at once. Merges by **maximum** — residency, not a
    /// total.
    pub peak_residue_nodes: u64,
    /// Estimated peak bytes held by the residue store (packed entries plus
    /// the interned query-text pool). An estimate from data-structure
    /// sizes, but a deterministic one: it is a pure function of the event
    /// stream. Merges by **maximum**.
    pub residue_bytes_est: u64,
}

impl Counters {
    /// Adds another counter set into this one. Every counter adds except
    /// [`Counters::peak_resident_contacts`], which takes the maximum.
    pub fn merge(&mut self, other: &Counters) {
        self.contacts += other.contacts;
        self.hello_exchanges += other.hello_exchanges;
        self.clique_formations += other.clique_formations;
        self.frames_sent += other.frames_sent;
        self.frames_lost += other.frames_lost;
        self.metadata_transferred += other.metadata_transferred;
        self.pieces_transferred += other.pieces_transferred;
        self.bytes_moved += other.bytes_moved;
        self.corrupt_receptions += other.corrupt_receptions;
        self.wanted_cache_hits += other.wanted_cache_hits;
        self.index_lookups += other.index_lookups;
        self.shards_loaded += other.shards_loaded;
        self.shards_prefetched += other.shards_prefetched;
        self.peak_resident_contacts = self
            .peak_resident_contacts
            .max(other.peak_resident_contacts);
        self.nodes_instantiated += other.nodes_instantiated;
        self.peak_resident_nodes = self.peak_resident_nodes.max(other.peak_resident_nodes);
        self.peak_residue_nodes = self.peak_residue_nodes.max(other.peak_residue_nodes);
        self.residue_bytes_est = self.residue_bytes_est.max(other.residue_bytes_est);
    }

    /// True if every counter is zero (the state of a fresh accumulator).
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }

    /// Every counter as a `(name, value)` pair, in a fixed rendering order.
    /// The names double as the keys of the perf-report JSON schema.
    pub fn entries(&self) -> [(&'static str, u64); 18] {
        [
            ("contacts", self.contacts),
            ("hello_exchanges", self.hello_exchanges),
            ("clique_formations", self.clique_formations),
            ("frames_sent", self.frames_sent),
            ("frames_lost", self.frames_lost),
            ("metadata_transferred", self.metadata_transferred),
            ("pieces_transferred", self.pieces_transferred),
            ("bytes_moved", self.bytes_moved),
            ("corrupt_receptions", self.corrupt_receptions),
            ("wanted_cache_hits", self.wanted_cache_hits),
            ("index_lookups", self.index_lookups),
            ("shards_loaded", self.shards_loaded),
            ("shards_prefetched", self.shards_prefetched),
            ("peak_resident_contacts", self.peak_resident_contacts),
            ("nodes_instantiated", self.nodes_instantiated),
            ("peak_resident_nodes", self.peak_resident_nodes),
            ("peak_residue_nodes", self.peak_residue_nodes),
            ("residue_bytes_est", self.residue_bytes_est),
        ]
    }

    /// Sets the counter with the given [`Counters::entries`] name. Returns
    /// false (and changes nothing) for an unknown name — used by the perf
    /// report parser so new fields stay forward-compatible.
    pub fn set(&mut self, name: &str, value: u64) -> bool {
        match name {
            "contacts" => self.contacts = value,
            "hello_exchanges" => self.hello_exchanges = value,
            "clique_formations" => self.clique_formations = value,
            "frames_sent" => self.frames_sent = value,
            "frames_lost" => self.frames_lost = value,
            "metadata_transferred" => self.metadata_transferred = value,
            "pieces_transferred" => self.pieces_transferred = value,
            "bytes_moved" => self.bytes_moved = value,
            "corrupt_receptions" => self.corrupt_receptions = value,
            "wanted_cache_hits" => self.wanted_cache_hits = value,
            "index_lookups" => self.index_lookups = value,
            "shards_loaded" => self.shards_loaded = value,
            "shards_prefetched" => self.shards_prefetched = value,
            "peak_resident_contacts" => self.peak_resident_contacts = value,
            "nodes_instantiated" => self.nodes_instantiated = value,
            "peak_resident_nodes" => self.peak_resident_nodes = value,
            "peak_residue_nodes" => self.peak_residue_nodes = value,
            "residue_bytes_est" => self.residue_bytes_est = value,
            _ => return false,
        }
        true
    }
}

/// The phases the observability layer times.
///
/// `Discovery` and `Download` are sub-spans of `ContactProcessing` (they
/// time the metadata and file broadcast phases inside each contact), so the
/// five spans do not sum to wall-clock time; report them individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Loading or generating the contact trace.
    TraceLoad,
    /// Processing contacts end to end (includes the two sub-spans below).
    ContactProcessing,
    /// The metadata broadcast (discovery) phase within contacts.
    Discovery,
    /// The file broadcast (download) phase within contacts.
    Download,
    /// Merging per-cell results in grid order.
    Reduction,
}

impl Phase {
    /// Every phase, in rendering order.
    pub const ALL: [Phase; 5] = [
        Phase::TraceLoad,
        Phase::ContactProcessing,
        Phase::Discovery,
        Phase::Download,
        Phase::Reduction,
    ];

    /// Number of phases.
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable snake_case name (doubles as the perf-report JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::TraceLoad => "trace_load",
            Phase::ContactProcessing => "contact_processing",
            Phase::Discovery => "discovery",
            Phase::Download => "download",
            Phase::Reduction => "reduction",
        }
    }

    /// Parses a [`Phase::name`] back into a phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Phase::TraceLoad => 0,
            Phase::ContactProcessing => 1,
            Phase::Discovery => 2,
            Phase::Download => 3,
            Phase::Reduction => 4,
        }
    }
}

/// Wall-clock time accumulated per [`Phase`].
///
/// Timings are observational: they never feed back into simulation state,
/// and they are kept out of every determinism-checked structure (two
/// identical runs report identical counters but different spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimes {
    spans: [Duration; Phase::COUNT],
}

impl PhaseTimes {
    /// Accumulated time in `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        self.spans[phase.index()]
    }

    /// Adds `elapsed` to `phase`.
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        self.spans[phase.index()] += elapsed;
    }

    /// Adds another span set into this one, phase by phase.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (slot, span) in self.spans.iter_mut().zip(&other.spans) {
            *slot += *span;
        }
    }

    /// Times `f`, charging its wall-clock duration to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }
}

/// Counters plus phase spans: the unit of aggregation the experiment
/// executor merges per sweep cell, in grid order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Telemetry {
    /// Deterministic event counters.
    pub counters: Counters,
    /// Observational wall-clock spans.
    pub phases: PhaseTimes,
}

impl Telemetry {
    /// Merges another telemetry record into this one (counters add, spans
    /// add).
    pub fn merge(&mut self, other: &Telemetry) {
        self.counters.merge(&other.counters);
        self.phases.merge(&other.phases);
    }
}

/// `count / elapsed` in events per second, guarded against empty inputs: a
/// zero or sub-nanosecond elapsed time (e.g. an empty sweep that processed
/// zero cells) yields `0.0` rather than `NaN` or infinity — the
/// `RatioSummary`-style guard, so empty sweeps still emit valid reports.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// assert_eq!(dtn_sim::telemetry::rate_per_sec(0, Duration::ZERO), 0.0);
/// assert_eq!(dtn_sim::telemetry::rate_per_sec(10, Duration::ZERO), 0.0);
/// assert_eq!(dtn_sim::telemetry::rate_per_sec(10, Duration::from_secs(2)), 5.0);
/// ```
pub fn rate_per_sec(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 || !secs.is_finite() {
        return 0.0;
    }
    let rate = count as f64 / secs;
    if rate.is_finite() {
        rate
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_counters() -> Counters {
        Counters {
            contacts: 1,
            hello_exchanges: 2,
            clique_formations: 3,
            frames_sent: 4,
            frames_lost: 5,
            metadata_transferred: 6,
            pieces_transferred: 7,
            bytes_moved: 8,
            corrupt_receptions: 9,
            wanted_cache_hits: 10,
            index_lookups: 11,
            shards_loaded: 12,
            shards_prefetched: 13,
            peak_resident_contacts: 14,
            nodes_instantiated: 15,
            peak_resident_nodes: 16,
            peak_residue_nodes: 17,
            residue_bytes_est: 18,
        }
    }

    #[test]
    fn merge_adds_every_counter_except_peak_which_maxes() {
        let mut a = distinct_counters();
        let b = a;
        a.merge(&b);
        let maxing = [
            "peak_resident_contacts",
            "peak_resident_nodes",
            "peak_residue_nodes",
            "residue_bytes_est",
        ];
        for ((name, merged), (_, original)) in a.entries().iter().zip(b.entries().iter()) {
            if maxing.contains(name) {
                assert_eq!(*merged, *original, "{name} merges by max, not addition");
            } else {
                assert_eq!(*merged, original * 2, "{name} should add on merge");
            }
        }
    }

    #[test]
    fn peak_resident_takes_maximum_either_direction() {
        let mut small = Counters {
            peak_resident_contacts: 10,
            ..Counters::default()
        };
        let large = Counters {
            peak_resident_contacts: 500,
            ..Counters::default()
        };
        small.merge(&large);
        assert_eq!(small.peak_resident_contacts, 500);
        let mut large = large;
        large.merge(&Counters {
            peak_resident_contacts: 10,
            ..Counters::default()
        });
        assert_eq!(large.peak_resident_contacts, 500);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = Counters {
            contacts: 3,
            frames_sent: 11,
            ..Counters::default()
        };
        let before = a;
        a.merge(&Counters::default());
        assert_eq!(a, before);
        assert!(!a.is_zero());
        assert!(Counters::default().is_zero());
    }

    #[test]
    fn entries_round_trip_through_set() {
        let a = distinct_counters();
        let mut b = Counters::default();
        for (name, value) in a.entries() {
            assert!(b.set(name, value), "unknown counter name {name}");
        }
        assert_eq!(a, b);
        assert!(!b.set("not_a_counter", 1));
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("warp_drive"), None);
    }

    #[test]
    fn phase_times_accumulate_and_merge() {
        let mut a = PhaseTimes::default();
        a.add(Phase::Discovery, Duration::from_millis(5));
        a.add(Phase::Discovery, Duration::from_millis(7));
        assert_eq!(a.get(Phase::Discovery), Duration::from_millis(12));
        assert_eq!(a.get(Phase::Download), Duration::ZERO);
        let mut b = PhaseTimes::default();
        b.add(Phase::Download, Duration::from_millis(3));
        b.merge(&a);
        assert_eq!(b.get(Phase::Discovery), Duration::from_millis(12));
        assert_eq!(b.get(Phase::Download), Duration::from_millis(3));
    }

    #[test]
    fn time_charges_the_right_phase_and_returns_the_value() {
        let mut t = PhaseTimes::default();
        let out = t.time(Phase::Reduction, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(t.get(Phase::TraceLoad), Duration::ZERO);
        // The span is non-negative by construction; it may round to zero on
        // a coarse clock, so only the untouched phases are asserted exactly.
    }

    #[test]
    fn rate_guards_empty_and_degenerate_inputs() {
        assert_eq!(rate_per_sec(0, Duration::ZERO), 0.0);
        assert_eq!(rate_per_sec(100, Duration::ZERO), 0.0);
        let r = rate_per_sec(100, Duration::from_millis(500));
        assert!((r - 200.0).abs() < 1e-9);
        assert!(rate_per_sec(u64::MAX, Duration::from_nanos(1)).is_finite());
    }

    #[test]
    fn telemetry_merge_covers_both_halves() {
        let mut cell = Telemetry::default();
        cell.counters.contacts = 2;
        cell.phases
            .add(Phase::ContactProcessing, Duration::from_millis(4));
        let mut total = Telemetry::default();
        total.merge(&cell);
        total.merge(&cell);
        assert_eq!(total.counters.contacts, 4);
        assert_eq!(
            total.phases.get(Phase::ContactProcessing),
            Duration::from_millis(8)
        );
    }
}
