//! The discrete-event simulation engine.

use dtn_trace::{Contact, ContactTrace, SimTime};

use crate::event::{Event, EventQueue};

/// Context handed to [`SimHandler`] callbacks: the current clock plus the
/// ability to schedule future events.
#[derive(Debug)]
pub struct SimCtx<'a> {
    now: SimTime,
    queue: &'a mut EventQueue,
    horizon: Option<SimTime>,
}

impl SimCtx<'_> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a [`Event::Scheduled`] with `tag` at absolute time `at`.
    ///
    /// Events scheduled in the past fire immediately after the current event
    /// (at the current clock). Events beyond the simulation horizon are
    /// silently dropped.
    pub fn schedule(&mut self, at: SimTime, tag: u64) {
        let at = at.max(self.now);
        if let Some(h) = self.horizon {
            if at > h {
                return;
            }
        }
        self.queue.push(at, Event::Scheduled { tag });
    }
}

/// Callbacks invoked by the [`Simulator`].
///
/// All methods have empty default implementations so handlers implement only
/// what they need.
pub trait SimHandler {
    /// Called once before the first event.
    fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
        let _ = ctx;
    }

    /// A contact begins.
    fn on_contact_start(&mut self, ctx: &mut SimCtx<'_>, contact: &Contact) {
        let _ = (ctx, contact);
    }

    /// A contact ends.
    fn on_contact_end(&mut self, ctx: &mut SimCtx<'_>, contact: &Contact) {
        let _ = (ctx, contact);
    }

    /// A user-scheduled event fires.
    fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called once after the last event.
    fn on_finish(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// Drives a [`SimHandler`] through a contact trace in event order.
///
/// Construction is cheap; the trace is borrowed. Use
/// [`Simulator::horizon`] to cut the run short and
/// [`Simulator::schedule`] to pre-register scheduled events (e.g. a daily
/// workload tick) before running.
///
/// Determinism: given the same trace, pre-scheduled events, and a
/// deterministic handler, two runs produce identical event sequences (see
/// [`EventQueue`] for the tie-breaking rules).
#[derive(Debug)]
pub struct Simulator<'a> {
    trace: &'a ContactTrace,
    queue: EventQueue,
    horizon: Option<SimTime>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `trace`.
    pub fn new(trace: &'a ContactTrace) -> Self {
        Simulator {
            trace,
            queue: EventQueue::new(),
            horizon: None,
        }
    }

    /// Stops the run at `at`: events strictly after the horizon never fire.
    pub fn horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }

    /// Pre-registers a scheduled event before the run starts.
    pub fn schedule(mut self, at: SimTime, tag: u64) -> Self {
        self.queue.push(at, Event::Scheduled { tag });
        self
    }

    /// Runs the simulation to completion (queue empty or horizon passed),
    /// returning the final clock value.
    pub fn run<H: SimHandler>(mut self, handler: &mut H) -> SimTime {
        for (idx, contact) in self.trace.iter().enumerate() {
            let within = self.horizon.is_none_or(|h| contact.start() <= h);
            if within {
                self.queue
                    .push(contact.start(), Event::ContactStart { contact: idx });
                if self.horizon.is_none_or(|h| contact.end() <= h) {
                    self.queue
                        .push(contact.end(), Event::ContactEnd { contact: idx });
                }
            }
        }

        let mut now = SimTime::ZERO;
        {
            let mut ctx = SimCtx {
                now,
                queue: &mut self.queue,
                horizon: self.horizon,
            };
            handler.on_start(&mut ctx);
        }
        while let Some((time, event)) = self.queue.pop() {
            if let Some(h) = self.horizon {
                if time > h {
                    break;
                }
            }
            now = time;
            let mut ctx = SimCtx {
                now,
                queue: &mut self.queue,
                horizon: self.horizon,
            };
            match event {
                Event::ContactStart { contact } => {
                    handler.on_contact_start(&mut ctx, &self.trace.contacts()[contact]);
                }
                Event::ContactEnd { contact } => {
                    handler.on_contact_end(&mut ctx, &self.trace.contacts()[contact]);
                }
                Event::Scheduled { tag } => handler.on_scheduled(&mut ctx, tag),
            }
        }
        handler.on_finish(now);
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::NodeId;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    #[derive(Default)]
    struct Recorder {
        log: Vec<String>,
    }

    impl SimHandler for Recorder {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            self.log.push(format!("start@{}", ctx.now().as_secs()));
        }
        fn on_contact_start(&mut self, ctx: &mut SimCtx<'_>, c: &Contact) {
            self.log.push(format!(
                "cs@{}:{}",
                ctx.now().as_secs(),
                c.participants()[0]
            ));
        }
        fn on_contact_end(&mut self, ctx: &mut SimCtx<'_>, c: &Contact) {
            self.log.push(format!(
                "ce@{}:{}",
                ctx.now().as_secs(),
                c.participants()[0]
            ));
        }
        fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
            self.log.push(format!("ev{tag}@{}", ctx.now().as_secs()));
        }
        fn on_finish(&mut self, now: SimTime) {
            self.log.push(format!("finish@{}", now.as_secs()));
        }
    }

    #[test]
    fn contacts_fire_in_order() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 15, 30)]
            .into_iter()
            .collect();
        let mut rec = Recorder::default();
        let end = Simulator::new(&trace).run(&mut rec);
        assert_eq!(end, SimTime::from_secs(30));
        assert_eq!(
            rec.log,
            vec![
                "start@0",
                "cs@10:n0",
                "cs@15:n2",
                "ce@20:n0",
                "ce@30:n2",
                "finish@30"
            ]
        );
    }

    #[test]
    fn scheduled_events_interleave() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let mut rec = Recorder::default();
        Simulator::new(&trace)
            .schedule(SimTime::from_secs(15), 7)
            .run(&mut rec);
        assert_eq!(rec.log[2], "ev7@15");
    }

    #[test]
    fn handler_can_self_schedule() {
        struct Ticker {
            fired: Vec<u64>,
        }
        impl SimHandler for Ticker {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
                self.fired.push(ctx.now().as_secs());
                if tag < 3 {
                    ctx.schedule(ctx.now() + dtn_trace::SimDuration::from_secs(10), tag + 1);
                }
            }
        }
        let trace = ContactTrace::new();
        let mut h = Ticker { fired: vec![] };
        Simulator::new(&trace)
            .schedule(SimTime::from_secs(5), 1)
            .run(&mut h);
        assert_eq!(h.fired, vec![5, 15, 25]);
    }

    #[test]
    fn horizon_cuts_run_short() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 100, 110)]
            .into_iter()
            .collect();
        let mut rec = Recorder::default();
        let end = Simulator::new(&trace)
            .horizon(SimTime::from_secs(50))
            .run(&mut rec);
        assert!(end <= SimTime::from_secs(50));
        assert!(!rec.log.iter().any(|l| l.contains("@100")));
    }

    #[test]
    fn schedule_beyond_horizon_is_dropped() {
        struct FarScheduler {
            fired: usize,
        }
        impl SimHandler for FarScheduler {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, _tag: u64) {
                self.fired += 1;
                // Would loop forever without the horizon drop.
                ctx.schedule(SimTime::from_secs(10_000), 99);
            }
        }
        let trace = ContactTrace::new();
        let mut h = FarScheduler { fired: 0 };
        Simulator::new(&trace)
            .horizon(SimTime::from_secs(100))
            .schedule(SimTime::from_secs(5), 1)
            .run(&mut h);
        assert_eq!(h.fired, 1);
    }

    #[test]
    fn end_start_same_instant_runs_end_first() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 20, 25)]
            .into_iter()
            .collect();
        let mut rec = Recorder::default();
        Simulator::new(&trace).run(&mut rec);
        let pos_end = rec.log.iter().position(|l| l == "ce@20:n0").unwrap();
        let pos_start = rec.log.iter().position(|l| l == "cs@20:n2").unwrap();
        assert!(pos_end < pos_start);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        struct PastScheduler {
            fired_at: Vec<u64>,
        }
        impl SimHandler for PastScheduler {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
                self.fired_at.push(ctx.now().as_secs());
                if tag == 1 {
                    ctx.schedule(SimTime::ZERO, 2); // in the past
                }
            }
        }
        let mut h = PastScheduler { fired_at: vec![] };
        let trace = ContactTrace::new();
        Simulator::new(&trace)
            .schedule(SimTime::from_secs(50), 1)
            .run(&mut h);
        assert_eq!(h.fired_at, vec![50, 50]);
    }

    #[test]
    fn empty_trace_still_calls_start_and_finish() {
        let trace = ContactTrace::new();
        let mut rec = Recorder::default();
        let end = Simulator::new(&trace).run(&mut rec);
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(rec.log, vec!["start@0", "finish@0"]);
    }
}
