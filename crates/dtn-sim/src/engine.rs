//! The discrete-event simulation engine.

use dtn_trace::{Contact, ContactTrace, SimTime};

use crate::event::{Event, EventQueue};

/// Context handed to [`SimHandler`] callbacks: the current clock plus the
/// ability to schedule future events.
#[derive(Debug)]
pub struct SimCtx<'a> {
    now: SimTime,
    queue: &'a mut EventQueue,
    horizon: Option<SimTime>,
}

impl SimCtx<'_> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a [`Event::Scheduled`] with `tag` at absolute time `at`.
    ///
    /// Events scheduled in the past fire immediately after the current event
    /// (at the current clock). Events beyond the simulation horizon are
    /// silently dropped.
    pub fn schedule(&mut self, at: SimTime, tag: u64) {
        let at = at.max(self.now);
        if let Some(h) = self.horizon {
            if at > h {
                return;
            }
        }
        self.queue.push(at, Event::Scheduled { tag });
    }
}

/// Callbacks invoked by the [`Simulator`].
///
/// All methods have empty default implementations so handlers implement only
/// what they need.
pub trait SimHandler {
    /// Called once before the first event.
    fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
        let _ = ctx;
    }

    /// A contact begins.
    fn on_contact_start(&mut self, ctx: &mut SimCtx<'_>, contact: &Contact) {
        let _ = (ctx, contact);
    }

    /// A contact ends.
    fn on_contact_end(&mut self, ctx: &mut SimCtx<'_>, contact: &Contact) {
        let _ = (ctx, contact);
    }

    /// A user-scheduled event fires.
    fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called once after the last event.
    fn on_finish(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// Drives a [`SimHandler`] through a contact trace in event order.
///
/// Construction is cheap; the trace is borrowed. Use
/// [`Simulator::horizon`] to cut the run short and
/// [`Simulator::schedule`] to pre-register scheduled events (e.g. a daily
/// workload tick) before running.
///
/// Determinism: given the same trace, pre-scheduled events, and a
/// deterministic handler, two runs produce identical event sequences (see
/// [`EventQueue`] for the tie-breaking rules).
#[derive(Debug)]
pub struct Simulator<'a> {
    trace: &'a ContactTrace,
    queue: EventQueue,
    horizon: Option<SimTime>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `trace`.
    pub fn new(trace: &'a ContactTrace) -> Self {
        Simulator {
            trace,
            queue: EventQueue::new(),
            horizon: None,
        }
    }

    /// Stops the run at `at`: events strictly after the horizon never fire.
    pub fn horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }

    /// Pre-registers a scheduled event before the run starts.
    pub fn schedule(mut self, at: SimTime, tag: u64) -> Self {
        self.queue.push(at, Event::Scheduled { tag });
        self
    }

    /// Runs the simulation to completion (queue empty or horizon passed),
    /// returning the final clock value.
    pub fn run<H: SimHandler>(self, handler: &mut H) -> SimTime {
        run_streaming(
            self.trace.iter().cloned(),
            self.queue,
            self.horizon,
            handler,
        )
    }
}

/// Drives a [`SimHandler`] through a *stream* of contacts in event order,
/// holding only the contacts that are currently open.
///
/// The stream must yield contacts sorted by start time (the canonical
/// [`ContactTrace`] order — both in-memory traces and sharded traces
/// provide it). Given the same contact sequence, scheduled events, and
/// handler, the event sequence is byte-identical to [`Simulator`] over the
/// equivalent in-memory trace: contact events can never tie with each other
/// on `(time, rank, key)` (the stream position is the key and is unique),
/// so feeding the queue lazily cannot change the pop order.
///
/// Memory: the event queue and the open-contact table hold only contacts
/// whose end has not fired yet — simulation state, not the trace.
#[derive(Debug)]
pub struct StreamSimulator<I> {
    contacts: I,
    queue: EventQueue,
    horizon: Option<SimTime>,
}

impl<I: Iterator<Item = Contact>> StreamSimulator<I> {
    /// Creates a streaming simulator over `contacts` (sorted by start).
    pub fn new(contacts: I) -> Self {
        StreamSimulator {
            contacts,
            queue: EventQueue::new(),
            horizon: None,
        }
    }

    /// Stops the run at `at`: events strictly after the horizon never fire.
    pub fn horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }

    /// Pre-registers a scheduled event before the run starts.
    pub fn schedule(mut self, at: SimTime, tag: u64) -> Self {
        self.queue.push(at, Event::Scheduled { tag });
        self
    }

    /// Runs the simulation to completion, returning the final clock value.
    pub fn run<H: SimHandler>(self, handler: &mut H) -> SimTime {
        run_streaming(self.contacts, self.queue, self.horizon, handler)
    }
}

/// Shared event-pump behind [`Simulator`] and [`StreamSimulator`].
///
/// Before each pop, contacts are admitted from the stream while their start
/// time is at or before the queue's next event (or the queue is empty) —
/// exactly the set whose events could sort ahead of anything already
/// queued. Once a contact starts beyond the horizon the stream is dropped
/// entirely (starts are sorted, nothing later can fire).
fn run_streaming<I, H>(
    contacts: I,
    mut queue: EventQueue,
    horizon: Option<SimTime>,
    handler: &mut H,
) -> SimTime
where
    I: Iterator<Item = Contact>,
    H: SimHandler,
{
    use std::collections::BTreeMap;

    let mut contacts = contacts.enumerate();
    // The next contact pulled from the stream but not yet admitted, and the
    // open contacts (admitted, end event not dispatched yet). The `bool`
    // records whether an end event was enqueued — ends beyond the horizon
    // are not, so those contacts retire right after their start fires.
    let mut pending: Option<(usize, Contact)> = None;
    let mut exhausted = false;
    let mut open: BTreeMap<usize, (Contact, bool)> = BTreeMap::new();

    let mut now = SimTime::ZERO;
    {
        let mut ctx = SimCtx {
            now,
            queue: &mut queue,
            horizon,
        };
        handler.on_start(&mut ctx);
    }
    loop {
        // Admit contacts that could sort ahead of the queue's next event.
        loop {
            if pending.is_none() {
                if exhausted {
                    break;
                }
                match contacts.next() {
                    Some(entry) => pending = Some(entry),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            let (idx, contact) = pending.as_ref().expect("pending was just filled");
            if horizon.is_some_and(|h| contact.start() > h) {
                // Sorted starts: every remaining contact is beyond the
                // horizon too.
                pending = None;
                exhausted = true;
                break;
            }
            if queue.peek_time().is_some_and(|t| contact.start() > t) {
                break;
            }
            let (idx, contact) = (*idx, pending.take().expect("pending is live").1);
            queue.push(contact.start(), Event::ContactStart { contact: idx });
            let end_within = horizon.is_none_or(|h| contact.end() <= h);
            if end_within {
                queue.push(contact.end(), Event::ContactEnd { contact: idx });
            }
            open.insert(idx, (contact, end_within));
        }

        let Some((time, event)) = queue.pop() else {
            break;
        };
        if let Some(h) = horizon {
            if time > h {
                break;
            }
        }
        now = time;
        let mut ctx = SimCtx {
            now,
            queue: &mut queue,
            horizon,
        };
        match event {
            Event::ContactStart { contact } => {
                let (c, end_within) = open.get(&contact).expect("start of an admitted contact");
                let end_within = *end_within;
                handler.on_contact_start(&mut ctx, c);
                if !end_within {
                    open.remove(&contact);
                }
            }
            Event::ContactEnd { contact } => {
                let (c, _) = open.remove(&contact).expect("end of an open contact");
                handler.on_contact_end(&mut ctx, &c);
            }
            Event::Scheduled { tag } => handler.on_scheduled(&mut ctx, tag),
        }
    }
    handler.on_finish(now);
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::NodeId;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    #[derive(Default)]
    struct Recorder {
        log: Vec<String>,
    }

    impl SimHandler for Recorder {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            self.log.push(format!("start@{}", ctx.now().as_secs()));
        }
        fn on_contact_start(&mut self, ctx: &mut SimCtx<'_>, c: &Contact) {
            self.log.push(format!(
                "cs@{}:{}",
                ctx.now().as_secs(),
                c.participants()[0]
            ));
        }
        fn on_contact_end(&mut self, ctx: &mut SimCtx<'_>, c: &Contact) {
            self.log.push(format!(
                "ce@{}:{}",
                ctx.now().as_secs(),
                c.participants()[0]
            ));
        }
        fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
            self.log.push(format!("ev{tag}@{}", ctx.now().as_secs()));
        }
        fn on_finish(&mut self, now: SimTime) {
            self.log.push(format!("finish@{}", now.as_secs()));
        }
    }

    #[test]
    fn contacts_fire_in_order() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 15, 30)]
            .into_iter()
            .collect();
        let mut rec = Recorder::default();
        let end = Simulator::new(&trace).run(&mut rec);
        assert_eq!(end, SimTime::from_secs(30));
        assert_eq!(
            rec.log,
            vec![
                "start@0",
                "cs@10:n0",
                "cs@15:n2",
                "ce@20:n0",
                "ce@30:n2",
                "finish@30"
            ]
        );
    }

    #[test]
    fn scheduled_events_interleave() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let mut rec = Recorder::default();
        Simulator::new(&trace)
            .schedule(SimTime::from_secs(15), 7)
            .run(&mut rec);
        assert_eq!(rec.log[2], "ev7@15");
    }

    #[test]
    fn handler_can_self_schedule() {
        struct Ticker {
            fired: Vec<u64>,
        }
        impl SimHandler for Ticker {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
                self.fired.push(ctx.now().as_secs());
                if tag < 3 {
                    ctx.schedule(ctx.now() + dtn_trace::SimDuration::from_secs(10), tag + 1);
                }
            }
        }
        let trace = ContactTrace::new();
        let mut h = Ticker { fired: vec![] };
        Simulator::new(&trace)
            .schedule(SimTime::from_secs(5), 1)
            .run(&mut h);
        assert_eq!(h.fired, vec![5, 15, 25]);
    }

    #[test]
    fn horizon_cuts_run_short() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 100, 110)]
            .into_iter()
            .collect();
        let mut rec = Recorder::default();
        let end = Simulator::new(&trace)
            .horizon(SimTime::from_secs(50))
            .run(&mut rec);
        assert!(end <= SimTime::from_secs(50));
        assert!(!rec.log.iter().any(|l| l.contains("@100")));
    }

    #[test]
    fn schedule_beyond_horizon_is_dropped() {
        struct FarScheduler {
            fired: usize,
        }
        impl SimHandler for FarScheduler {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, _tag: u64) {
                self.fired += 1;
                // Would loop forever without the horizon drop.
                ctx.schedule(SimTime::from_secs(10_000), 99);
            }
        }
        let trace = ContactTrace::new();
        let mut h = FarScheduler { fired: 0 };
        Simulator::new(&trace)
            .horizon(SimTime::from_secs(100))
            .schedule(SimTime::from_secs(5), 1)
            .run(&mut h);
        assert_eq!(h.fired, 1);
    }

    #[test]
    fn end_start_same_instant_runs_end_first() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 20, 25)]
            .into_iter()
            .collect();
        let mut rec = Recorder::default();
        Simulator::new(&trace).run(&mut rec);
        let pos_end = rec.log.iter().position(|l| l == "ce@20:n0").unwrap();
        let pos_start = rec.log.iter().position(|l| l == "cs@20:n2").unwrap();
        assert!(pos_end < pos_start);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        struct PastScheduler {
            fired_at: Vec<u64>,
        }
        impl SimHandler for PastScheduler {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
                self.fired_at.push(ctx.now().as_secs());
                if tag == 1 {
                    ctx.schedule(SimTime::ZERO, 2); // in the past
                }
            }
        }
        let mut h = PastScheduler { fired_at: vec![] };
        let trace = ContactTrace::new();
        Simulator::new(&trace)
            .schedule(SimTime::from_secs(50), 1)
            .run(&mut h);
        assert_eq!(h.fired_at, vec![50, 50]);
    }

    #[test]
    fn empty_trace_still_calls_start_and_finish() {
        let trace = ContactTrace::new();
        let mut rec = Recorder::default();
        let end = Simulator::new(&trace).run(&mut rec);
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(rec.log, vec!["start@0", "finish@0"]);
    }

    /// A trace with overlapping contacts, simultaneous starts/ends, and an
    /// end coinciding with another contact's start — the shapes that stress
    /// the event ordering rules.
    fn gnarly_trace() -> ContactTrace {
        vec![
            pc(0, 1, 10, 20),
            pc(2, 3, 10, 30), // same start as above, longer
            pc(4, 5, 20, 25), // starts exactly when the first ends
            pc(6, 7, 22, 40),
            pc(8, 9, 40, 55), // starts when the previous ends
            pc(1, 2, 40, 41), // simultaneous start, different pair
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn stream_simulator_matches_simulator_event_for_event() {
        let trace = gnarly_trace();
        let mut upfront = Recorder::default();
        let end_a = Simulator::new(&trace)
            .schedule(SimTime::from_secs(15), 1)
            .schedule(SimTime::from_secs(40), 2)
            .run(&mut upfront);
        let mut streamed = Recorder::default();
        let end_b = StreamSimulator::new(trace.iter().cloned())
            .schedule(SimTime::from_secs(15), 1)
            .schedule(SimTime::from_secs(40), 2)
            .run(&mut streamed);
        assert_eq!(end_a, end_b);
        assert_eq!(upfront.log, streamed.log);
    }

    #[test]
    fn stream_simulator_matches_simulator_under_horizon() {
        let trace = gnarly_trace();
        // A horizon that truncates contact 3's end (40 > 35) and drops the
        // last two contacts entirely.
        let mut upfront = Recorder::default();
        Simulator::new(&trace)
            .horizon(SimTime::from_secs(35))
            .run(&mut upfront);
        let mut streamed = Recorder::default();
        StreamSimulator::new(trace.iter().cloned())
            .horizon(SimTime::from_secs(35))
            .run(&mut streamed);
        assert_eq!(upfront.log, streamed.log);
    }

    #[test]
    fn stream_simulator_supports_self_scheduling_handlers() {
        struct Ticker {
            fired: Vec<u64>,
        }
        impl SimHandler for Ticker {
            fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, tag: u64) {
                self.fired.push(ctx.now().as_secs());
                if tag < 3 {
                    ctx.schedule(ctx.now() + dtn_trace::SimDuration::from_secs(10), tag + 1);
                }
            }
        }
        let mut h = Ticker { fired: vec![] };
        StreamSimulator::new(std::iter::empty())
            .schedule(SimTime::from_secs(5), 1)
            .run(&mut h);
        assert_eq!(h.fired, vec![5, 15, 25]);
    }
}
