//! Property tests for [`DeliveryStats::merge`].
//!
//! The parallel sweep executor reduces per-replicate results by merging, so
//! the merge must behave like a commutative monoid on the observable surface:
//! counts, ratios, mean delays, and the measured-node predicate. These
//! properties are what `SeriesPoint::from_replicates` relies on for
//! order-independent (and therefore thread-count-independent) reductions.

use dtn_sim::DeliveryStats;
use dtn_trace::{NodeId, SimTime};
use proptest::collection::vec;
use proptest::prelude::*;

/// One recorded event: node id, op kind (0 = query, 1 = metadata delivery,
/// 2 = file delivery), and timestamp in seconds.
type Op = (u32, u8, u64);

fn build(ops: &[Op]) -> DeliveryStats {
    let mut stats = DeliveryStats::measuring_all();
    for &(node, op, secs) in ops {
        let node = NodeId::new(node);
        let at = SimTime::from_secs(secs);
        match op {
            0 => {
                stats.record_query(node, at);
            }
            1 => stats.record_metadata_delivery(node, at),
            _ => stats.record_file_delivery(node, at),
        }
    }
    stats
}

/// The observable surface the executor's reduction depends on.
fn observe(s: &DeliveryStats) -> (u64, u64, u64, f64, f64, Option<f64>, Option<f64>) {
    (
        s.queries(),
        s.metadata_delivered(),
        s.files_delivered(),
        s.metadata_delivery_ratio(),
        s.file_delivery_ratio(),
        s.mean_metadata_delay_secs(),
        s.mean_file_delay_secs(),
    )
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec((0u32..6, 0u8..3, 0u64..10_000), 0..30)
}

/// Regression (ISSUE 2): cells with zero attempted transfers — possible
/// under heavy churn, where nodes are down for whole contact windows — must
/// pool to ratio 0, never NaN, at every layer of the reduction.
#[test]
fn zero_attempted_transfer_cells_pool_without_nan() {
    // Raw stats: deliveries recorded but no queries (denominator is zero).
    let mut stats = DeliveryStats::measuring_all();
    stats.record_metadata_delivery(NodeId::new(1), SimTime::from_secs(10));
    stats.record_file_delivery(NodeId::new(1), SimTime::from_secs(20));
    assert_eq!(stats.queries(), 0);
    assert_eq!(stats.metadata_delivery_ratio(), 0.0);
    assert_eq!(stats.file_delivery_ratio(), 0.0);
    // Merging two zero-query cells keeps the denominator zero.
    let mut merged = DeliveryStats::default();
    merged.merge(&stats);
    merged.merge(&DeliveryStats::default());
    assert_eq!(merged.metadata_delivery_ratio(), 0.0);
    assert_eq!(merged.file_delivery_ratio(), 0.0);

    // Executor layer: pooling empty simulation results and summarising an
    // empty replicate set both stay finite.
    let mut pooled = mbt_experiments::SimResult::default();
    pooled.merge(&mbt_experiments::SimResult::default());
    assert_eq!(pooled.metadata_ratio, 0.0);
    assert_eq!(pooled.file_ratio, 0.0);
    let summary = mbt_experiments::RatioSummary::from_samples(&[]);
    assert!(summary.mean.is_finite() && summary.stddev.is_finite());
}

proptest! {
    #[test]
    fn merge_is_commutative_on_observables(
        a in ops_strategy(),
        b in ops_strategy(),
    ) {
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(observe(&ab), observe(&ba));
    }

    #[test]
    fn merge_is_associative_on_observables(
        a in ops_strategy(),
        b in ops_strategy(),
        c in ops_strategy(),
    ) {
        // (a + b) + c
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a + (b + c)
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);
        prop_assert_eq!(observe(&left), observe(&right));
    }

    #[test]
    fn merging_empty_is_identity(a in ops_strategy()) {
        let reference = build(&a);

        // a + 0
        let mut right = build(&a);
        right.merge(&DeliveryStats::default());
        prop_assert_eq!(observe(&reference), observe(&right));

        // 0 + a
        let mut left = DeliveryStats::default();
        left.merge(&reference);
        prop_assert_eq!(observe(&reference), observe(&left));
    }

    #[test]
    fn merged_ratios_equal_pooled_count_ratios(
        a in ops_strategy(),
        b in ops_strategy(),
    ) {
        let sa = build(&a);
        let sb = build(&b);
        let queries = sa.queries() + sb.queries();
        let metadata = sa.metadata_delivered() + sb.metadata_delivered();
        let files = sa.files_delivered() + sb.files_delivered();

        let mut merged = build(&a);
        merged.merge(&sb);

        prop_assert_eq!(merged.queries(), queries);
        prop_assert_eq!(merged.metadata_delivered(), metadata);
        prop_assert_eq!(merged.files_delivered(), files);
        let expect_meta = if queries == 0 { 0.0 } else { metadata as f64 / queries as f64 };
        let expect_file = if queries == 0 { 0.0 } else { files as f64 / queries as f64 };
        prop_assert_eq!(merged.metadata_delivery_ratio(), expect_meta);
        prop_assert_eq!(merged.file_delivery_ratio(), expect_file);
    }

    /// Ratios are total functions: finite and non-negative for every op
    /// stream, including streams with no queries at all.
    #[test]
    fn merged_ratios_are_always_finite(
        a in ops_strategy(),
        b in ops_strategy(),
    ) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        for ratio in [merged.metadata_delivery_ratio(), merged.file_delivery_ratio()] {
            prop_assert!(ratio.is_finite(), "ratio {ratio} is not finite");
            prop_assert!(ratio >= 0.0);
        }
    }

    #[test]
    fn merge_preserves_measured_membership(
        nodes_a in vec(0u32..12, 0..6),
        nodes_b in vec(0u32..12, 0..6),
        probe in 0u32..12,
    ) {
        let a = DeliveryStats::new(nodes_a.iter().copied().map(NodeId::new));
        let b = DeliveryStats::new(nodes_b.iter().copied().map(NodeId::new));
        let mut merged = a.clone();
        merged.merge(&b);
        let node = NodeId::new(probe);
        prop_assert_eq!(merged.measures(node), a.measures(node) || b.measures(node));
    }
}
