//! Property tests for the fault-injection layer (ISSUE 2):
//!
//! - delivery ratio is monotonically non-increasing in the loss rate
//!   (noise-aware, pooled over replicates),
//! - a zero-rate plan is byte-identical to the fault-free code path,
//! - churned nodes never originate contacts while down,
//! - fault decisions are deterministic pure functions of the plan.
//!
//! The suite drives whole simulations through `mbt-experiments` (a dev-only
//! dependency cycle, which cargo permits).

use dtn_sim::FaultPlan;
use dtn_trace::generators::NusConfig;
use dtn_trace::{Contact, ContactTrace, NodeId, SimDuration, SimTime, SECONDS_PER_DAY};
use mbt_experiments::runner::{run_simulation, SimParams, SimResult};
use proptest::prelude::*;

fn quick_trace() -> ContactTrace {
    NusConfig::new(30, 6)
        .seed(11)
        .attendance_rate(0.8)
        .generate()
}

fn quick_params(seed: u64) -> SimParams {
    SimParams {
        files_per_day: 10,
        days: 6,
        seed,
        ..SimParams::default()
    }
}

/// Pools `replicates` runs at `loss`, varying both workload and fault seeds.
fn pooled_at_loss(trace: &ContactTrace, loss: f64, replicates: u64) -> SimResult {
    let mut pooled = SimResult::default();
    for rep in 0..replicates {
        let mut params = quick_params(rep + 1);
        params.faults = FaultPlan::none().loss(loss).seed(1_000 + rep);
        pooled.merge(&run_simulation(trace, &params, None));
    }
    pooled
}

#[test]
fn delivery_ratio_is_monotone_non_increasing_in_loss() {
    let trace = quick_trace();
    let losses = [0.0, 0.25, 0.5, 1.0];
    let pooled: Vec<SimResult> = losses
        .iter()
        .map(|&loss| pooled_at_loss(&trace, loss, 3))
        .collect();
    // Noise-aware: pooling over replicates smooths per-run jitter; a small
    // slack absorbs what remains.
    const SLACK: f64 = 0.02;
    for (i, w) in pooled.windows(2).enumerate() {
        assert!(
            w[1].metadata_ratio <= w[0].metadata_ratio + SLACK,
            "metadata ratio rose from loss {} ({:.4}) to loss {} ({:.4})",
            losses[i],
            w[0].metadata_ratio,
            losses[i + 1],
            w[1].metadata_ratio
        );
        assert!(
            w[1].file_ratio <= w[0].file_ratio + SLACK,
            "file ratio rose from loss {} ({:.4}) to loss {} ({:.4})",
            losses[i],
            w[0].file_ratio,
            losses[i + 1],
            w[1].file_ratio
        );
    }
    // Endpoints are exact: no losses at 0, no peer deliveries at 1.
    let clean = &pooled[0];
    let dead = pooled.last().unwrap();
    assert_eq!(clean.frames_lost, 0);
    assert!(dead.queries > 0);
    assert_eq!(
        dead.metadata_delivered, 0,
        "peers are the only metadata path"
    );
    assert_eq!(dead.files_delivered, 0, "peers are the only file path");
}

#[test]
fn zero_rate_plan_is_byte_identical_to_no_fault_path() {
    let trace = quick_trace();
    let clean = run_simulation(&trace, &quick_params(5), None);
    // Any combination of zero rates — even with a nonzero seed — must not
    // draw a single random number, so the runs are equal field-for-field.
    let mut zeroed = quick_params(5);
    zeroed.faults = FaultPlan::none().seed(0xDEAD_BEEF);
    assert_eq!(clean, run_simulation(&trace, &zeroed, None));
    let mut explicit = quick_params(5);
    explicit.faults = FaultPlan::none()
        .loss(0.0)
        .truncate(0.0)
        .churn(0.0)
        .corruption(0.0)
        .seed(7);
    assert_eq!(clean, run_simulation(&trace, &explicit, None));
}

#[test]
fn churned_nodes_never_originate_contacts_while_down() {
    let horizon = SimDuration::from_secs(SECONDS_PER_DAY);
    let plan = FaultPlan::none().churn(1.0).seed(5);
    let a = NodeId::new(0);
    let b = NodeId::new(1);
    let (down_start, down_end) = plan
        .down_interval(a, horizon)
        .expect("churn 1.0 downs every node");

    let params = |faults: FaultPlan| SimParams {
        internet_fraction: 0.0,
        files_per_day: 2,
        days: 1,
        faults,
        ..SimParams::default()
    };

    // A contact starting inside the down interval must not happen.
    let inside: ContactTrace = vec![Contact::pairwise(
        a,
        b,
        down_start,
        SimTime::from_secs(down_start.as_secs() + 60),
    )
    .unwrap()]
    .into_iter()
    .collect();
    let r = run_simulation(&inside, &params(plan), None);
    assert_eq!(r.contacts, 0, "contact ran during the down interval");
    // Without the plan the same contact happens — the trace is fine.
    let clean = run_simulation(&inside, &params(FaultPlan::none()), None);
    assert_eq!(clean.contacts, 1);

    // A contact at an instant where both nodes are up still happens.
    let both_up = (0..horizon.as_secs() - 60)
        .find(|&t| {
            let at = SimTime::from_secs(t);
            !plan.is_down(a, horizon, at) && !plan.is_down(b, horizon, at)
        })
        .expect("some instant has both nodes up (intervals are at most h/2)");
    let outside: ContactTrace = vec![Contact::pairwise(
        a,
        b,
        SimTime::from_secs(both_up),
        SimTime::from_secs(both_up + 60),
    )
    .unwrap()]
    .into_iter()
    .collect();
    let r = run_simulation(&outside, &params(plan), None);
    assert_eq!(
        r.contacts, 1,
        "contact outside every down interval must run"
    );
    let _ = down_end; // interval end is exercised via is_down above
}

/// The CI fault matrix pins this with FAULT_LOSS ∈ {0, 0.25}: at any
/// configured loss rate, repeated runs are byte-identical.
#[test]
fn configured_loss_rate_is_deterministic() {
    let loss: f64 = std::env::var("FAULT_LOSS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let trace = quick_trace();
    let mut params = quick_params(3);
    params.faults = FaultPlan::none().loss(loss).seed(9);
    let a = run_simulation(&trace, &params, None);
    let b = run_simulation(&trace, &params, None);
    assert_eq!(a, b);
    if loss > 0.0 {
        assert!(a.frames_lost > 0, "loss {loss} should drop frames");
    } else {
        assert_eq!(a, run_simulation(&trace, &quick_params(3), None));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every decision helper is a deterministic function of its coordinates.
    #[test]
    fn fault_rolls_are_pure_functions(
        seed in any::<u64>(),
        rate in 0.0f64..=1.0,
        t in 0u64..1_000_000,
        s in 0u32..64,
        r in 0u32..64,
    ) {
        let plan = FaultPlan::none().loss(rate).corruption(rate).seed(seed);
        let now = SimTime::from_secs(t);
        let (sn, rn) = (NodeId::new(s), NodeId::new(r));
        prop_assert_eq!(
            plan.frame_lost(now, sn, rn, "mbt://x"),
            plan.frame_lost(now, sn, rn, "mbt://x")
        );
        prop_assert_eq!(
            plan.corrupts(now, sn, rn, "mbt://x"),
            plan.corrupts(now, sn, rn, "mbt://x")
        );
    }

    /// Down intervals always sit inside the horizon and agree with is_down.
    #[test]
    fn down_intervals_are_consistent(
        seed in any::<u64>(),
        churn in 0.01f64..=1.0,
        node in 0u32..128,
        horizon_days in 1u64..10,
    ) {
        let plan = FaultPlan::none().churn(churn).seed(seed);
        let horizon = SimDuration::from_days(horizon_days);
        if let Some((start, end)) = plan.down_interval(NodeId::new(node), horizon) {
            prop_assert!(start < end);
            prop_assert!(end.as_secs() <= horizon.as_secs());
            prop_assert!(plan.is_down(NodeId::new(node), horizon, start));
            prop_assert!(!plan.is_down(NodeId::new(node), horizon, end));
        } else {
            prop_assert!(!plan.is_down(NodeId::new(node), horizon, SimTime::ZERO));
        }
    }

    /// Truncation keeps the surviving fraction within its advertised bounds.
    #[test]
    fn contact_keep_respects_bounds(
        seed in any::<u64>(),
        rate in 0.0f64..=1.0,
        t in 0u64..1_000_000,
    ) {
        let plan = FaultPlan::none().truncate(rate).seed(seed);
        let members = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let keep = plan.contact_keep(SimTime::from_secs(t), &members);
        prop_assert!(keep >= 1.0 - rate - 1e-12);
        prop_assert!(keep <= 1.0);
    }
}
