//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use dtn_sim::channel::{broadcast_per_node_capacity, pairwise_per_node_capacity, ContactBudget};
use dtn_sim::rng::cyclic_order;
use dtn_sim::{Event, EventQueue, NeighborGraph};
use dtn_trace::{NodeId, SimTime};

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..20, 0u32..20), 0..60)
}

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time(
        items in proptest::collection::vec((0u64..10_000, 0u64..100), 0..200)
    ) {
        let mut q = EventQueue::new();
        for &(t, tag) in &items {
            q.push(SimTime::from_secs(t), Event::Scheduled { tag });
        }
        prop_assert_eq!(q.len(), items.len());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn event_queue_order_is_insertion_order_invariant_for_distinct_keys(
        mut items in proptest::collection::btree_set((0u64..1_000, 0u64..1_000), 0..100)
    ) {
        // Distinct (time, tag) pairs: popping order must not depend on push order.
        let v: Vec<(u64, u64)> = items.iter().copied().collect();
        let mut q1 = EventQueue::new();
        for &(t, tag) in &v {
            q1.push(SimTime::from_secs(t), Event::Scheduled { tag });
        }
        let mut q2 = EventQueue::new();
        for &(t, tag) in v.iter().rev() {
            q2.push(SimTime::from_secs(t), Event::Scheduled { tag });
        }
        let drain = |mut q: EventQueue| {
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        prop_assert_eq!(drain(q1), drain(q2));
        items.clear();
    }

    #[test]
    fn maximal_cliques_are_cliques_and_maximal(edges in arb_edges()) {
        let g: NeighborGraph = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (NodeId::new(a), NodeId::new(b)))
            .collect();
        let cliques = g.maximal_cliques();
        let nodes = g.nodes();
        for clique in &cliques {
            // Every pair inside is connected.
            for (i, &a) in clique.iter().enumerate() {
                for &b in &clique[i + 1..] {
                    prop_assert!(g.connected(a, b), "clique not complete: {a} {b}");
                }
            }
            // No outside vertex extends it.
            for &v in &nodes {
                if clique.contains(&v) {
                    continue;
                }
                let extends = clique.iter().all(|&c| g.connected(v, c));
                prop_assert!(!extends, "clique not maximal: {v} extends {clique:?}");
            }
        }
    }

    #[test]
    fn every_edge_is_covered_by_some_clique(edges in arb_edges()) {
        let g: NeighborGraph = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (NodeId::new(a), NodeId::new(b)))
            .collect();
        let cliques = g.maximal_cliques();
        for &a in &g.nodes() {
            for b in g.neighbors(a) {
                let covered = cliques.iter().any(|c| c.contains(&a) && c.contains(&b));
                prop_assert!(covered, "edge ({a},{b}) not in any maximal clique");
            }
        }
    }

    #[test]
    fn cyclic_order_is_permutation_and_member_order_free(
        ids in proptest::collection::btree_set(0u32..1_000, 0..30)
    ) {
        let members: Vec<NodeId> = ids.iter().copied().map(NodeId::new).collect();
        let mut reversed = members.clone();
        reversed.reverse();
        let a = cyclic_order(&members);
        let b = cyclic_order(&reversed);
        prop_assert_eq!(&a, &b, "order depends on argument order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, members);
    }

    #[test]
    fn capacity_formulas_sum_correctly(n in 2usize..100) {
        // Broadcast: n-1 receivers per slot ⇒ per-node (n-1)/n; pair-wise: 1.
        let b = broadcast_per_node_capacity(n);
        let p = pairwise_per_node_capacity(n);
        prop_assert!((b * n as f64 - (n as f64 - 1.0)).abs() < 1e-9);
        prop_assert!((p * n as f64 - 1.0).abs() < 1e-9);
        prop_assert!(b >= p);
    }

    #[test]
    fn budget_accounting_is_exact(meta in 0u32..50, files in 0u32..50) {
        let mut budget = ContactBudget::new(meta, files);
        let mut sent_meta = 0u32;
        while budget.try_send_metadata().is_ok() {
            sent_meta += 1;
        }
        let mut sent_files = 0u32;
        while budget.try_send_file().is_ok() {
            sent_files += 1;
        }
        prop_assert_eq!(sent_meta, meta);
        prop_assert_eq!(sent_files, files);
        prop_assert!(budget.is_exhausted() || (meta == 0 && files == 0));
        budget.reset();
        prop_assert_eq!(budget.metadata_left(), meta);
        prop_assert_eq!(budget.files_left(), files);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn neighbor_table_graph_edges_only_among_live(
        beacons in proptest::collection::vec((1u32..15, proptest::collection::vec(0u32..15, 0..5), 0u64..100), 0..30),
        at in 0u64..120
    ) {
        use dtn_sim::{HelloBeacon, NeighborTable};
        let me = NodeId::new(0);
        let mut table = NeighborTable::new(me);
        for (sender, heard, t) in &beacons {
            let beacon = HelloBeacon::new(
                NodeId::new(*sender),
                heard.iter().copied().map(NodeId::new).collect(),
                (),
            );
            table.record(&beacon, SimTime::from_secs(*t));
        }
        let now = SimTime::from_secs(at);
        let live = table.neighbors(now);
        let g = table.local_graph(now);
        for n in g.nodes() {
            prop_assert!(n == me || live.contains(&n), "dead node {n} in local graph");
        }
    }
}
