//! Experiment harness reproducing the evaluation of *"Cooperative File
//! Sharing in Hybrid Delay Tolerant Networks"* (ICDCS 2011).
//!
//! - [`workload`] — the paper's daily file/query workload (§VI-A),
//! - [`runner`] — the end-to-end simulation measuring delivery ratios among
//!   non-Internet-access nodes,
//! - [`sweep`] / [`figures`] — parameter sweeps regenerating every panel of
//!   Figures 2 and 3,
//! - [`capacity`] — the §V broadcast-vs-pair-wise capacity analysis,
//! - [`ablations`] — cooperation-mode and contact-ordering ablations,
//! - [`report`] — text/CSV rendering.
//!
//! Binaries: `fig2`, `fig3`, `capacity`, `ablations`, `all_experiments`
//! (each accepts `--quick`).
//!
//! # Example
//!
//! ```
//! use dtn_trace::generators::NusConfig;
//! use mbt_experiments::runner::{run_simulation, SimParams};
//!
//! let trace = NusConfig::new(20, 5).seed(1).generate();
//! let result = run_simulation(&trace, &SimParams { days: 5, ..SimParams::default() }, None);
//! assert!(result.queries > 0);
//! ```
//!
//! The trace argument is any [`dtn_trace::TraceSource`] — an in-memory
//! [`dtn_trace::ContactTrace`] as above, or an on-disk
//! [`dtn_trace::ShardedTrace`] replayed with bounded memory. Figure sweeps
//! take a [`figures::RunContext`] bundling scale, execution, trace backing
//! and telemetry:
//!
//! ```no_run
//! use mbt_experiments::figures::{fig2a, RunContext, Scale};
//!
//! let mut ctx = RunContext::new(Scale::Quick).sharded("shards").observed();
//! let fig = fig2a(&mut ctx);
//! let telemetry = ctx.take_telemetry();
//! assert!(telemetry.counters.shards_loaded > 0);
//! # let _ = fig;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod capacity;
pub mod exec;
pub mod figures;
pub mod mobility;
pub mod perf;
pub mod progress;
pub mod report;
pub mod residue;
pub mod routing;
pub mod runner;
pub mod sweep;
pub mod workload;

pub use exec::{ExecConfig, ParallelRunner};
pub use figures::{RunContext, Scale};
pub use perf::{BenchReport, Tolerance};
pub use residue::ResidueStore;
pub use runner::{run_simulation, SimParams, SimResult};
pub use sweep::{Figure, ProtocolSeries, RatioSummary, SeriesPoint};

/// Parses the common `--quick` flag from argv.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}

/// Parses the common execution flags from argv: `--jobs N` (worker threads,
/// 0 = one per core) and `--replicates R` (independent runs per sweep
/// cell). Unrecognised or malformed values fall back to the defaults.
pub fn exec_from_args() -> ExecConfig {
    let mut cfg = ExecConfig::default();
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.jobs = n;
                }
            }
            "--replicates" => {
                if let Some(r) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.replicates = r;
                }
            }
            _ => {}
        }
    }
    cfg
}

/// Writes a CSV string to `results/<name>.csv` (creating the directory),
/// returning the path written. I/O errors are reported, not fatal.
pub fn write_csv(name: &str, csv: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, csv) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}
