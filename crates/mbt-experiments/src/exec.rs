//! Parallel, replicated sweep execution.
//!
//! The paper's Fig. 2/3 evaluations are parameter sweeps (internet fraction,
//! files/day, TTL, buffers) over three protocol variants. Run serially with
//! a single seed they are slow and report point estimates with no variance.
//! [`ParallelRunner`] fans every *(figure point × protocol × replicate)*
//! cell of a sweep out over a rayon thread pool and merges the per-replicate
//! results into mean/min/max/stddev summaries per [`SeriesPoint`].
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of thread count or scheduling
//! order** because no randomness flows through the executor itself:
//!
//! - every cell derives its own seed as
//!   `derive_seed(&[master, point_idx, protocol_idx, replicate_idx])`, so a
//!   cell's seed depends only on its grid coordinates;
//! - the immutable [`TraceSource`] (an in-memory trace or an on-disk
//!   sharded trace) is shared via [`Arc`], never regenerated per cell;
//! - cell results are collected and reduced in grid order, never in
//!   completion order.
//!
//! `tests/parallel_determinism.rs` pins this contract: the same figure run
//! with `--jobs 1` and `--jobs 8` must render byte-identical CSV.
//!
//! Every sweep entry point takes an optional [`Telemetry`] sink as its last
//! argument: `None` runs the plain path (no telemetry work at all), `Some`
//! merges per-cell counters and phase spans **in grid order** so the
//! counters too are bit-identical for any worker count.

use std::sync::Arc;
use std::time::Instant;

use dtn_sim::rng::derive_seed;
use dtn_sim::telemetry::{Phase, Telemetry};
use dtn_trace::{ContactTrace, TraceSource};
use mbt_core::ProtocolSpec;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

use crate::runner::{run_simulation, SimParams, SimResult};
use crate::sweep::{Figure, ProtocolSeries, SeriesPoint};

/// How a sweep executes: worker count, replicate count, and the master seed
/// every cell seed is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Independent replicate runs per (point, protocol) cell; clamped to at
    /// least 1.
    pub replicates: u32,
    /// Master seed: cell seeds are
    /// `derive_seed(&[master_seed, point_idx, protocol_idx, replicate_idx])`.
    pub master_seed: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            jobs: 0,
            replicates: 1,
            master_seed: 42,
        }
    }
}

impl ExecConfig {
    /// Single-threaded execution (identical results, no parallelism).
    pub fn serial() -> ExecConfig {
        ExecConfig {
            jobs: 1,
            ..ExecConfig::default()
        }
    }

    /// Sets the worker count (`0` = one per core).
    pub fn jobs(mut self, jobs: usize) -> ExecConfig {
        self.jobs = jobs;
        self
    }

    /// Sets the replicate count (clamped to ≥ 1 at execution time).
    pub fn replicates(mut self, replicates: u32) -> ExecConfig {
        self.replicates = replicates;
        self
    }

    /// Sets the master seed.
    pub fn master_seed(mut self, seed: u64) -> ExecConfig {
        self.master_seed = seed;
        self
    }
}

/// One executable cell of a sweep grid.
#[derive(Debug, Clone)]
struct Cell {
    point_idx: usize,
    source: Arc<dyn TraceSource>,
    params: SimParams,
}

/// Parallel sweep executor. See the module docs for the determinism
/// contract.
#[derive(Debug)]
pub struct ParallelRunner {
    cfg: ExecConfig,
    pool: ThreadPool,
    /// The protocol list every sweep expands its grid over, in series (and
    /// grid-index) order. Defaults to the paper's triad, whose grid indices
    /// — and therefore derived per-cell seeds — match the closed
    /// `ProtocolKind::ALL` era byte for byte.
    protocols: Vec<ProtocolSpec>,
}

impl ParallelRunner {
    /// Builds a runner (and its thread pool) for `cfg`, sweeping the default
    /// triad protocol list.
    pub fn new(cfg: ExecConfig) -> ParallelRunner {
        let pool = ThreadPoolBuilder::new()
            .num_threads(cfg.jobs)
            .build()
            .expect("thread pool construction cannot fail");
        ParallelRunner {
            cfg,
            pool,
            protocols: ProtocolSpec::TRIAD.to_vec(),
        }
    }

    /// Replaces the protocol list subsequent sweeps run over (one series per
    /// spec, in list order). Panics on an empty list — a sweep over no
    /// protocols has no grid.
    pub fn with_protocols(mut self, protocols: impl Into<Vec<ProtocolSpec>>) -> ParallelRunner {
        let protocols = protocols.into();
        assert!(!protocols.is_empty(), "sweep needs at least one protocol");
        self.protocols = protocols;
        self
    }

    /// The protocol list sweeps expand over.
    pub fn protocols(&self) -> &[ProtocolSpec] {
        &self.protocols
    }

    /// The effective replicate count (≥ 1).
    pub fn replicates(&self) -> u32 {
        self.cfg.replicates.max(1)
    }

    /// Runs `f` over `items` on this runner's pool, returning results in
    /// input order. The generic escape hatch for non-sweep workloads
    /// (ablations, progression) that still want deterministic parallelism.
    pub fn run_all<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        self.pool.install(|| items.par_iter().map(f).collect())
    }

    /// Runs a sweep: `setup` produces the trace and base parameters per x
    /// value (serially, in x order, charged to the trace-load span when
    /// observed), then every *(point × protocol × replicate)* cell is
    /// simulated on the pool. Each trace is generated once and shared across
    /// its cells via [`Arc`].
    pub fn sweep<F>(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        xs: &[f64],
        mut setup: F,
        mut telemetry: Option<&mut Telemetry>,
    ) -> Figure
    where
        F: FnMut(f64) -> (ContactTrace, SimParams),
    {
        let started = Instant::now();
        let prepared: Vec<(Arc<dyn TraceSource>, SimParams)> = xs
            .iter()
            .map(|&x| {
                let (trace, params) = setup(x);
                (Arc::new(trace) as Arc<dyn TraceSource>, params)
            })
            .collect();
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.phases.add(Phase::TraceLoad, started.elapsed());
        }
        self.run_prepared(id, title, x_label, xs, &prepared, telemetry)
    }

    /// Like [`ParallelRunner::sweep`] but `setup` hands back an arbitrary
    /// [`TraceSource`] per x value — the entry point for sweeps over
    /// on-disk sharded traces (or a mix of backings).
    pub fn sweep_sources<F>(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        xs: &[f64],
        mut setup: F,
        mut telemetry: Option<&mut Telemetry>,
    ) -> Figure
    where
        F: FnMut(f64) -> (Arc<dyn TraceSource>, SimParams),
    {
        let started = Instant::now();
        let prepared: Vec<(Arc<dyn TraceSource>, SimParams)> =
            xs.iter().map(|&x| setup(x)).collect();
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.phases.add(Phase::TraceLoad, started.elapsed());
        }
        self.run_prepared(id, title, x_label, xs, &prepared, telemetry)
    }

    /// Like [`ParallelRunner::sweep`] but with one fixed [`TraceSource`]
    /// shared by every x value — the common case when the swept parameter
    /// does not affect mobility.
    #[allow(clippy::too_many_arguments)] // mirrors sweep()'s figure-metadata prefix
    pub fn sweep_shared_source<F>(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        xs: &[f64],
        source: Arc<dyn TraceSource>,
        mut params_for: F,
        telemetry: Option<&mut Telemetry>,
    ) -> Figure
    where
        F: FnMut(f64) -> SimParams,
    {
        let prepared: Vec<(Arc<dyn TraceSource>, SimParams)> = xs
            .iter()
            .map(|&x| (Arc::clone(&source), params_for(x)))
            .collect();
        self.run_prepared(id, title, x_label, xs, &prepared, telemetry)
    }

    /// Convenience wrapper over [`ParallelRunner::sweep_shared_source`] for
    /// an in-memory trace: the trace is cloned once into an [`Arc`], never
    /// per cell.
    #[allow(clippy::too_many_arguments)] // mirrors sweep()'s figure-metadata prefix
    pub fn sweep_shared_trace<F>(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        xs: &[f64],
        trace: &ContactTrace,
        params_for: F,
        mut telemetry: Option<&mut Telemetry>,
    ) -> Figure
    where
        F: FnMut(f64) -> SimParams,
    {
        let started = Instant::now();
        let shared: Arc<dyn TraceSource> = Arc::new(trace.clone());
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.phases.add(Phase::TraceLoad, started.elapsed());
        }
        self.sweep_shared_source(id, title, x_label, xs, shared, params_for, telemetry)
    }

    fn run_prepared(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        xs: &[f64],
        prepared: &[(Arc<dyn TraceSource>, SimParams)],
        telemetry: Option<&mut Telemetry>,
    ) -> Figure {
        let cells = self.build_cells(prepared);
        match telemetry {
            None => {
                let results: Vec<SimResult> = self.run_all(&cells, |cell| {
                    run_simulation(cell.source.as_ref(), &cell.params, None)
                });
                reduce(
                    id,
                    title,
                    x_label,
                    xs,
                    &self.protocols,
                    self.replicates(),
                    &cells,
                    &results,
                )
            }
            Some(telemetry) => {
                let observed: Vec<(SimResult, Telemetry)> = self.run_all(&cells, |cell| {
                    let mut cell_telemetry = Telemetry::default();
                    let result = run_simulation(
                        cell.source.as_ref(),
                        &cell.params,
                        Some(&mut cell_telemetry),
                    );
                    (result, cell_telemetry)
                });
                // run_all returns results in input (= grid) order, so
                // merging here keeps the counters bit-identical for any
                // worker count; only the wall-clock spans vary run to run.
                let mut results: Vec<SimResult> = Vec::with_capacity(observed.len());
                for (result, cell_telemetry) in observed {
                    telemetry.merge(&cell_telemetry);
                    results.push(result);
                }
                let started = Instant::now();
                let fig = reduce(
                    id,
                    title,
                    x_label,
                    xs,
                    &self.protocols,
                    self.replicates(),
                    &cells,
                    &results,
                );
                telemetry.phases.add(Phase::Reduction, started.elapsed());
                fig
            }
        }
    }

    /// Expands the prepared per-point inputs into the flat cell grid.
    fn build_cells(&self, prepared: &[(Arc<dyn TraceSource>, SimParams)]) -> Vec<Cell> {
        let replicates = self.replicates();
        let protocols = &self.protocols;

        // Grid order: point-major, then protocol, then replicate. The cell
        // at flat index ((point * n_protos) + proto) * replicates + rep is
        // fully determined by its coordinates, including its derived seed.
        let mut cells: Vec<Cell> =
            Vec::with_capacity(prepared.len() * protocols.len() * replicates as usize);
        for (point_idx, (source, base)) in prepared.iter().enumerate() {
            for (proto_idx, &protocol) in protocols.iter().enumerate() {
                for rep in 0..replicates {
                    let mut params = base.clone();
                    params.protocol = protocol;
                    params.seed = derive_seed(&[
                        self.cfg.master_seed,
                        point_idx as u64,
                        proto_idx as u64,
                        u64::from(rep),
                    ]);
                    // Fault streams get their own per-cell seed in a
                    // disjoint domain: derive_seed(&[master, point, proto,
                    // rep, FAULT_STREAM]); each fault kind then mixes in its
                    // own tag (see `dtn_sim::faults`). A noop plan keeps
                    // seed untouched so the cell stays byte-identical to a
                    // fault-free run.
                    if !params.faults.is_noop() {
                        params.faults = params.faults.seed(derive_seed(&[
                            self.cfg.master_seed,
                            point_idx as u64,
                            proto_idx as u64,
                            u64::from(rep),
                            dtn_sim::faults::FAULT_STREAM,
                        ]));
                    }
                    cells.push(Cell {
                        point_idx,
                        source: Arc::clone(source),
                        params,
                    });
                }
            }
        }
        cells
    }
}

/// Deterministic reduction in grid order.
#[allow(clippy::too_many_arguments)] // one call site, mirrors the grid axes
fn reduce(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    protocols: &[ProtocolSpec],
    replicates: u32,
    cells: &[Cell],
    results: &[SimResult],
) -> Figure {
    let series: Vec<ProtocolSeries> = protocols
        .iter()
        .enumerate()
        .map(|(proto_idx, &protocol)| {
            let points: Vec<SeriesPoint> = xs
                .iter()
                .enumerate()
                .map(|(point_idx, &x)| {
                    let base = (point_idx * protocols.len() + proto_idx) * replicates as usize;
                    let replicate_results: Vec<SimResult> = (0..replicates as usize)
                        .map(|rep| {
                            debug_assert_eq!(cells[base + rep].point_idx, point_idx);
                            results[base + rep].clone()
                        })
                        .collect();
                    SeriesPoint::from_replicates(x, replicate_results)
                })
                .collect();
            ProtocolSeries { protocol, points }
        })
        .collect();

    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;

    fn quick_params(days: u64) -> SimParams {
        SimParams {
            files_per_day: 5,
            days,
            ..SimParams::default()
        }
    }

    fn run_with(cfg: ExecConfig) -> Figure {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        ParallelRunner::new(cfg).sweep_shared_trace(
            "t",
            "t",
            "x",
            &[0.2, 0.6],
            &trace,
            |x| SimParams {
                internet_fraction: x,
                ..quick_params(5)
            },
            None,
        )
    }

    #[test]
    fn grid_is_complete() {
        let fig = run_with(ExecConfig::default());
        assert_eq!(fig.series.len(), ProtocolSpec::TRIAD.len());
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 0.2);
            assert_eq!(s.points[1].x, 0.6);
        }
    }

    #[test]
    fn custom_protocol_list_expands_the_grid() {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let run = |cfg: ExecConfig| {
            ParallelRunner::new(cfg)
                .with_protocols(ProtocolSpec::builtin())
                .sweep_shared_trace(
                    "t",
                    "t",
                    "x",
                    &[0.3],
                    &trace,
                    |x| SimParams {
                        internet_fraction: x,
                        ..quick_params(5)
                    },
                    None,
                )
        };
        let fig = run(ExecConfig::serial());
        assert_eq!(fig.series.len(), ProtocolSpec::builtin().len());
        assert!(fig.series_for(ProtocolSpec::POP_CACHE).is_some());
        assert!(fig.series_for(ProtocolSpec::DIFFUSE_REP).is_some());
        // The determinism contract holds for any protocol list.
        assert_eq!(fig, run(ExecConfig::default().jobs(8)));
    }

    #[test]
    fn triad_prefix_of_wider_grids_keeps_legacy_seeds() {
        // Extending the protocol list appends series without disturbing the
        // triad's grid indices, so every legacy cell keeps its derived seed.
        let triad = run_with(ExecConfig::default());
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let wide = ParallelRunner::new(ExecConfig::default())
            .with_protocols(ProtocolSpec::builtin())
            .sweep_shared_trace(
                "t",
                "t",
                "x",
                &[0.2, 0.6],
                &trace,
                |x| SimParams {
                    internet_fraction: x,
                    ..quick_params(5)
                },
                None,
            );
        assert_eq!(triad.series, wide.series[..3]);
    }

    #[test]
    fn jobs_do_not_change_results() {
        let serial = run_with(ExecConfig::serial());
        let parallel = run_with(ExecConfig::default().jobs(8));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn telemetry_sink_does_not_change_the_figure() {
        let plain = run_with(ExecConfig::serial());
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let mut telemetry = Telemetry::default();
        let observed = ParallelRunner::new(ExecConfig::serial()).sweep_shared_trace(
            "t",
            "t",
            "x",
            &[0.2, 0.6],
            &trace,
            |x| SimParams {
                internet_fraction: x,
                ..quick_params(5)
            },
            Some(&mut telemetry),
        );
        assert_eq!(plain, observed);
        assert!(telemetry.counters.contacts > 0);
        assert_eq!(telemetry.counters.shards_loaded, 0, "in-memory source");
        assert!(telemetry.counters.peak_resident_contacts > 0);
    }

    #[test]
    fn shared_source_matches_shared_trace() {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let runner = ParallelRunner::new(ExecConfig::serial());
        let params_for = |x| SimParams {
            internet_fraction: x,
            ..quick_params(5)
        };
        let by_trace =
            runner.sweep_shared_trace("t", "t", "x", &[0.2, 0.6], &trace, params_for, None);
        let shared: Arc<dyn TraceSource> = Arc::new(trace);
        let by_source =
            runner.sweep_shared_source("t", "t", "x", &[0.2, 0.6], shared, params_for, None);
        assert_eq!(by_trace, by_source);
    }

    #[test]
    fn replicates_populate_summaries() {
        let fig = run_with(ExecConfig::serial().replicates(3));
        for s in &fig.series {
            for p in &s.points {
                assert_eq!(p.metadata.n, 3);
                assert_eq!(p.file.n, 3);
                assert!(p.metadata.min <= p.metadata.mean);
                assert!(p.metadata.mean <= p.metadata.max);
                assert!(p.metadata.stddev >= 0.0);
                // Pooled counts: three replicates' queries accumulated.
                assert!(p.result.queries > 0);
            }
        }
    }

    #[test]
    fn faulty_cells_get_grid_derived_seeds_and_stay_deterministic() {
        use dtn_sim::FaultPlan;
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let run = |cfg: ExecConfig| {
            ParallelRunner::new(cfg).sweep_shared_trace(
                "t",
                "t",
                "loss",
                &[0.25],
                &trace,
                |x| SimParams {
                    faults: FaultPlan::none().loss(x),
                    ..quick_params(5)
                },
                None,
            )
        };
        let serial = run(ExecConfig::serial());
        let parallel = run(ExecConfig::default().jobs(8));
        assert_eq!(serial, parallel);
        let lost: u64 = serial
            .series
            .iter()
            .map(|s| s.points[0].result.frames_lost)
            .sum();
        assert!(lost > 0, "loss plan should drop frames");
    }

    #[test]
    fn master_seed_changes_results() {
        let a = run_with(ExecConfig::serial());
        let b = run_with(ExecConfig::serial().master_seed(7));
        assert_ne!(a, b);
    }

    #[test]
    fn replicate_count_changes_spread_not_grid() {
        let one = run_with(ExecConfig::serial());
        let three = run_with(ExecConfig::serial().replicates(3));
        assert_eq!(one.series.len(), three.series.len());
        // Replicate 0 of each cell uses the same derived seed, so the first
        // replicate's contribution is shared; the summaries differ.
        for (s1, s3) in one.series.iter().zip(&three.series) {
            for (p1, p3) in s1.points.iter().zip(&s3.points) {
                assert_eq!(p1.metadata.n, 1);
                assert_eq!(p3.metadata.n, 3);
                assert!(p3.metadata.min <= p1.metadata_ratio + 1e-12);
                assert!(p3.metadata.max + 1e-12 >= p1.metadata_ratio);
            }
        }
    }
}
