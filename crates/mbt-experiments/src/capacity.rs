//! The §V capacity analysis: broadcast vs pair-wise transmission.
//!
//! The paper argues that broadcast-based file download has an *increasing*
//! per-node transmission capacity as node density increases — `(n-1)/n` for a
//! clique of `n` — while pair-wise transmission *decreases* — `1/n`. This
//! module reproduces that analysis both analytically and by counting
//! receptions in a slot-level simulation, and adds the derived
//! time-to-distribute comparison.

use dtn_sim::channel::{
    broadcast_per_node_capacity, pairwise_per_node_capacity, simulate_receptions, TransmissionMode,
};

/// One row of the capacity table.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityRow {
    /// Clique size.
    pub n: usize,
    /// Analytic per-node broadcast capacity `(n-1)/n`.
    pub broadcast: f64,
    /// Analytic per-node pair-wise capacity `1/n`.
    pub pairwise: f64,
    /// Simulated per-node per-slot reception rate under broadcast.
    pub broadcast_sim: f64,
    /// Simulated per-node per-slot reception rate under pair-wise.
    pub pairwise_sim: f64,
    /// Slots to give every member one copy of a file, broadcasting.
    pub slots_broadcast: u64,
    /// Slots to give every member one copy of a file, pair-wise.
    pub slots_pairwise: u64,
}

/// Computes the capacity table for clique sizes `2..=max_n`.
pub fn capacity_table(max_n: usize, slots: u64) -> Vec<CapacityRow> {
    (2..=max_n)
        .map(|n| {
            let b = simulate_receptions(TransmissionMode::Broadcast, n, slots);
            let p = simulate_receptions(TransmissionMode::Pairwise, n, slots);
            CapacityRow {
                n,
                broadcast: broadcast_per_node_capacity(n),
                pairwise: pairwise_per_node_capacity(n),
                broadcast_sim: b as f64 / (n as f64 * slots as f64),
                pairwise_sim: p as f64 / (n as f64 * slots as f64),
                // One holder must serve n-1 receivers: 1 broadcast slot vs
                // n-1 pair-wise transmissions.
                slots_broadcast: 1,
                slots_pairwise: (n as u64) - 1,
            }
        })
        .collect()
}

/// The crossover statement of §V: broadcast strictly beats pair-wise for all
/// `n > 2`, and they tie at `n = 2`.
pub fn crossover_holds(rows: &[CapacityRow]) -> bool {
    rows.iter().all(|r| {
        if r.n == 2 {
            (r.broadcast - r.pairwise).abs() < 1e-12
        } else {
            r.broadcast > r.pairwise
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_requested_sizes() {
        let rows = capacity_table(10, 100);
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].n, 2);
        assert_eq!(rows[8].n, 10);
    }

    #[test]
    fn simulation_matches_analysis() {
        for row in capacity_table(12, 1000) {
            assert!(
                (row.broadcast - row.broadcast_sim).abs() < 1e-12,
                "n={}",
                row.n
            );
            assert!(
                (row.pairwise - row.pairwise_sim).abs() < 1e-12,
                "n={}",
                row.n
            );
        }
    }

    #[test]
    fn broadcast_monotone_up_pairwise_down() {
        let rows = capacity_table(16, 10);
        for w in rows.windows(2) {
            assert!(w[1].broadcast > w[0].broadcast);
            assert!(w[1].pairwise < w[0].pairwise);
        }
    }

    #[test]
    fn crossover_statement_holds() {
        assert!(crossover_holds(&capacity_table(20, 10)));
    }

    #[test]
    fn distribution_slots_grow_linearly_for_pairwise() {
        let rows = capacity_table(8, 10);
        for r in &rows {
            assert_eq!(r.slots_broadcast, 1);
            assert_eq!(r.slots_pairwise, r.n as u64 - 1);
        }
    }
}
