//! Perf reports, bench harness, and baseline comparison.
//!
//! The observability layer ([`dtn_sim::telemetry`]) produces counters and
//! phase spans; this module turns them into a schema-versioned JSON report
//! (`BENCH_sweep.json`), runs the quick-scale bench sweeps that feed it, and
//! diffs a fresh report against a committed baseline.
//!
//! The comparison rules mirror the determinism contract:
//!
//! - **counters are compared exactly** — they are a pure function of the
//!   deterministic event stream, so any drift is a behaviour change, not
//!   noise;
//! - **timings are thresholded** — wall clock varies run to run, so only a
//!   relative regression beyond [`Tolerance::rel`] (plus an absolute slack)
//!   fails, and phases whose baseline is tiny are skipped entirely.
//!
//! No serde is available in this workspace, so the JSON writer and the
//! minimal recursive-descent parser here are hand-rolled. Counter values
//! round-trip through f64, which is exact below 2^53 — far above anything a
//! bench run produces.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

use dtn_sim::rng::{derive_seed, stream};
use dtn_sim::telemetry::{rate_per_sec, Counters, Phase, PhaseTimes, Telemetry};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{NodeId, ShardWriter, SimDuration, SimTime};
use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};
use rand::Rng;

use crate::exec::ExecConfig;
use crate::figures::{self, Scale};
use crate::runner::{run_simulation, SimParams};
use crate::sweep::Figure;

/// Schema tag every report carries; bumped on any incompatible layout
/// change. [`compare`] refuses to diff reports with different tags.
pub const BENCH_SCHEMA: &str = "mbt-bench-v1";

/// One perf report: identification, shape, timings, and counter totals.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema tag ([`BENCH_SCHEMA`] for reports written by this build).
    pub schema: String,
    /// `git describe --always --dirty` of the producing checkout, or
    /// `"unknown"` outside a repository.
    pub git: String,
    /// Human label for the workload ("quick", "full", "simulate", …).
    pub scale: String,
    /// Worker threads the producing run used (`0` = one per core).
    pub jobs: usize,
    /// Replicates per sweep cell.
    pub replicates: u32,
    /// Simulation cells executed (point × protocol × replicate, summed over
    /// sweeps).
    pub cells: u64,
    /// End-to-end wall clock of the bench in seconds.
    pub wall_secs: f64,
    /// `cells / wall_secs`, `0.0` when either is zero (empty-sweep guard —
    /// see [`rate_per_sec`]).
    pub cells_per_sec: f64,
    /// Wall-clock per instrumented phase. `discovery` and `download` are
    /// sub-spans of `contact_processing`; phases do not sum to `wall_secs`.
    pub phases: PhaseTimes,
    /// Deterministic counter totals, merged in grid order.
    pub counters: Counters,
    /// Ids of the sweeps that contributed, in execution order.
    pub sweeps: Vec<String>,
    /// The metadata-server bench section, when the run included one
    /// (`mbt bench --server`). Absent from sweep-only reports.
    pub server: Option<ServerBench>,
    /// The city-scale streaming bench section, when the run included one
    /// (`mbt bench --city`). Absent from sweep-only reports.
    pub city: Option<CityBench>,
}

impl BenchReport {
    /// Assembles a report from an observed run. Degenerate inputs (zero
    /// cells or zero wall clock) yield a valid report with a zero rate
    /// rather than NaN.
    pub fn new(
        scale: &str,
        exec: &ExecConfig,
        cells: u64,
        wall: Duration,
        telemetry: &Telemetry,
        sweeps: Vec<String>,
    ) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            git: git_describe(),
            scale: scale.to_string(),
            jobs: exec.jobs,
            replicates: exec.replicates.max(1),
            cells,
            wall_secs: wall.as_secs_f64(),
            cells_per_sec: rate_per_sec(cells, wall),
            phases: telemetry.phases,
            counters: telemetry.counters,
            sweeps,
            server: None,
            city: None,
        }
    }

    /// Renders the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(&self.schema)));
        out.push_str(&format!("  \"git\": {},\n", json_str(&self.git)));
        out.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        out.push_str(&format!("  \"cells\": {},\n", self.cells));
        out.push_str(&format!("  \"wall_secs\": {:.6},\n", self.wall_secs));
        out.push_str(&format!(
            "  \"cells_per_sec\": {:.6},\n",
            self.cells_per_sec
        ));
        out.push_str("  \"phases\": {\n");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let sep = if i + 1 == Phase::ALL.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{}\": {:.6}{sep}\n",
                phase.name(),
                self.phases.get(*phase).as_secs_f64()
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"counters\": {\n");
        let entries = self.counters.entries();
        for (i, (name, value)) in entries.iter().enumerate() {
            let sep = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {value}{sep}\n"));
        }
        out.push_str("  },\n");
        if let Some(sb) = &self.server {
            out.push_str("  \"server_bench\": {\n");
            out.push_str(&format!("    \"records\": {},\n", sb.records));
            out.push_str(&format!("    \"shards\": {},\n", sb.shards));
            out.push_str(&format!("    \"ops\": {},\n", sb.ops));
            out.push_str(&format!("    \"publishes\": {},\n", sb.publishes));
            out.push_str(&format!("    \"searches\": {},\n", sb.searches));
            out.push_str(&format!("    \"requests\": {},\n", sb.requests));
            out.push_str(&format!("    \"expired\": {},\n", sb.expired));
            out.push_str(&format!("    \"hits\": {},\n", sb.hits));
            out.push_str(&format!(
                "    \"result_digest\": \"{:#018x}\",\n",
                sb.result_digest
            ));
            out.push_str(&format!("    \"build_secs\": {:.6},\n", sb.build_secs));
            out.push_str(&format!("    \"run_secs\": {:.6},\n", sb.run_secs));
            out.push_str(&format!("    \"ops_per_sec\": {:.6}\n", sb.ops_per_sec));
            out.push_str("  },\n");
        }
        if let Some(cb) = &self.city {
            out.push_str("  \"city_bench\": {\n");
            out.push_str(&format!("    \"nodes\": {},\n", cb.nodes));
            out.push_str(&format!("    \"days\": {},\n", cb.days));
            out.push_str(&format!("    \"routes\": {},\n", cb.routes));
            out.push_str(&format!("    \"seed\": {},\n", cb.seed));
            out.push_str(&format!("    \"prefetch\": {},\n", cb.prefetch));
            out.push_str(&format!("    \"contacts\": {},\n", cb.contacts));
            out.push_str(&format!("    \"shards\": {},\n", cb.shards));
            out.push_str(&format!("    \"shards_loaded\": {},\n", cb.shards_loaded));
            out.push_str(&format!(
                "    \"shards_prefetched\": {},\n",
                cb.shards_prefetched
            ));
            out.push_str(&format!(
                "    \"peak_resident_contacts\": {},\n",
                cb.peak_resident_contacts
            ));
            out.push_str(&format!(
                "    \"peak_residue_nodes\": {},\n",
                cb.peak_residue_nodes
            ));
            out.push_str(&format!(
                "    \"residue_bytes_est\": {},\n",
                cb.residue_bytes_est
            ));
            out.push_str(&format!("    \"queries\": {},\n", cb.queries));
            out.push_str(&format!(
                "    \"files_delivered\": {},\n",
                cb.files_delivered
            ));
            out.push_str(&format!(
                "    \"result_digest\": \"{:#018x}\",\n",
                cb.result_digest
            ));
            out.push_str(&format!("    \"gen_secs\": {:.6},\n", cb.gen_secs));
            out.push_str(&format!("    \"sim_secs\": {:.6},\n", cb.sim_secs));
            out.push_str(&format!(
                "    \"contacts_per_sec\": {:.6}\n",
                cb.contacts_per_sec
            ));
            out.push_str("  },\n");
        }
        out.push_str("  \"sweeps\": [");
        for (i, id) in self.sweeps.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(id));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    /// Unknown phase or counter keys are ignored (forward compatibility);
    /// missing keys default to zero / empty.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or type error.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj().ok_or("top level is not an object")?;
        let mut report = BenchReport {
            schema: String::new(),
            git: String::new(),
            scale: String::new(),
            jobs: 0,
            replicates: 1,
            cells: 0,
            wall_secs: 0.0,
            cells_per_sec: 0.0,
            phases: PhaseTimes::default(),
            counters: Counters::default(),
            sweeps: Vec::new(),
            server: None,
            city: None,
        };
        for (key, val) in obj {
            match key.as_str() {
                "schema" => report.schema = val.expect_str(key)?,
                "git" => report.git = val.expect_str(key)?,
                "scale" => report.scale = val.expect_str(key)?,
                "jobs" => report.jobs = val.expect_num(key)? as usize,
                "replicates" => report.replicates = val.expect_num(key)? as u32,
                "cells" => report.cells = val.expect_num(key)? as u64,
                "wall_secs" => report.wall_secs = val.expect_num(key)?,
                "cells_per_sec" => report.cells_per_sec = val.expect_num(key)?,
                "phases" => {
                    for (name, secs) in val.as_obj().ok_or("phases is not an object")? {
                        if let Some(phase) = Phase::from_name(name) {
                            let secs = secs.expect_num(name)?;
                            report
                                .phases
                                .add(phase, Duration::from_secs_f64(secs.max(0.0)));
                        }
                    }
                }
                "counters" => {
                    for (name, count) in val.as_obj().ok_or("counters is not an object")? {
                        let count = count.expect_num(name)? as u64;
                        let _ = report.counters.set(name, count);
                    }
                }
                "sweeps" => {
                    for item in val.as_arr().ok_or("sweeps is not an array")? {
                        report.sweeps.push(item.expect_str("sweeps[]")?);
                    }
                }
                "server_bench" => {
                    let fields = val.as_obj().ok_or("server_bench is not an object")?;
                    let mut sb = ServerBench::default();
                    for (name, field) in fields {
                        match name.as_str() {
                            "records" => sb.records = field.expect_num(name)? as u64,
                            "shards" => sb.shards = field.expect_num(name)? as u64,
                            "ops" => sb.ops = field.expect_num(name)? as u64,
                            "publishes" => sb.publishes = field.expect_num(name)? as u64,
                            "searches" => sb.searches = field.expect_num(name)? as u64,
                            "requests" => sb.requests = field.expect_num(name)? as u64,
                            "expired" => sb.expired = field.expect_num(name)? as u64,
                            "hits" => sb.hits = field.expect_num(name)? as u64,
                            "result_digest" => {
                                // Hex string: u64 digests exceed f64's exact
                                // integer range, so they never ride as JSON
                                // numbers.
                                let text = field.expect_str(name)?;
                                let raw = text.trim_start_matches("0x");
                                sb.result_digest = u64::from_str_radix(raw, 16)
                                    .map_err(|e| format!("bad result_digest `{text}`: {e}"))?;
                            }
                            "build_secs" => sb.build_secs = field.expect_num(name)?,
                            "run_secs" => sb.run_secs = field.expect_num(name)?,
                            "ops_per_sec" => sb.ops_per_sec = field.expect_num(name)?,
                            _ => {}
                        }
                    }
                    report.server = Some(sb);
                }
                "city_bench" => {
                    let fields = val.as_obj().ok_or("city_bench is not an object")?;
                    let mut cb = CityBench::default();
                    for (name, field) in fields {
                        match name.as_str() {
                            "nodes" => cb.nodes = field.expect_num(name)? as u64,
                            "days" => cb.days = field.expect_num(name)? as u64,
                            "routes" => cb.routes = field.expect_num(name)? as u64,
                            "seed" => cb.seed = field.expect_num(name)? as u64,
                            "prefetch" => cb.prefetch = field.expect_num(name)? as u64,
                            "contacts" => cb.contacts = field.expect_num(name)? as u64,
                            "shards" => cb.shards = field.expect_num(name)? as u64,
                            "shards_loaded" => cb.shards_loaded = field.expect_num(name)? as u64,
                            "shards_prefetched" => {
                                cb.shards_prefetched = field.expect_num(name)? as u64
                            }
                            "peak_resident_contacts" => {
                                cb.peak_resident_contacts = field.expect_num(name)? as u64
                            }
                            "peak_residue_nodes" => {
                                cb.peak_residue_nodes = field.expect_num(name)? as u64
                            }
                            "residue_bytes_est" => {
                                cb.residue_bytes_est = field.expect_num(name)? as u64
                            }
                            "queries" => cb.queries = field.expect_num(name)? as u64,
                            "files_delivered" => {
                                cb.files_delivered = field.expect_num(name)? as u64
                            }
                            "result_digest" => {
                                // Hex string for the same reason as the
                                // server digest: u64 > 2^53.
                                let text = field.expect_str(name)?;
                                let raw = text.trim_start_matches("0x");
                                cb.result_digest = u64::from_str_radix(raw, 16)
                                    .map_err(|e| format!("bad result_digest `{text}`: {e}"))?;
                            }
                            "gen_secs" => cb.gen_secs = field.expect_num(name)?,
                            "sim_secs" => cb.sim_secs = field.expect_num(name)?,
                            "contacts_per_sec" => cb.contacts_per_sec = field.expect_num(name)?,
                            _ => {}
                        }
                    }
                    report.city = Some(cb);
                }
                _ => {}
            }
        }
        Ok(report)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `git describe --always --dirty` of the current checkout, or `"unknown"`
/// when git is unavailable (e.g. a source tarball).
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Comparison thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum allowed relative wall-clock growth (0.30 = +30%).
    pub rel: f64,
    /// Absolute slack in seconds added on top of the relative allowance —
    /// keeps sub-second phases from failing on scheduler jitter.
    pub abs_secs: f64,
    /// Phases whose baseline is below this many seconds are not compared at
    /// all (too noisy to threshold meaningfully).
    pub min_phase_secs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel: 0.30,
            abs_secs: 0.25,
            min_phase_secs: 0.05,
        }
    }
}

/// Diffs `current` against `baseline`, returning one message per violation
/// (empty = pass).
///
/// Schema and report shape (cells, replicates, sweeps) must match exactly;
/// counters must match exactly (they are deterministic); timings are only
/// compared when both runs used the same `jobs`, and only fail when the
/// current value exceeds `baseline * (1 + rel) + abs_secs`.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tol: &Tolerance) -> Vec<String> {
    let mut errors = Vec::new();
    if current.schema != baseline.schema {
        errors.push(format!(
            "schema mismatch: current `{}` vs baseline `{}` (regenerate the baseline)",
            current.schema, baseline.schema
        ));
        return errors;
    }
    if current.cells != baseline.cells {
        errors.push(format!(
            "cell count drift: current {} vs baseline {}",
            current.cells, baseline.cells
        ));
    }
    if current.replicates != baseline.replicates {
        errors.push(format!(
            "replicate count drift: current {} vs baseline {}",
            current.replicates, baseline.replicates
        ));
    }
    if current.sweeps != baseline.sweeps {
        errors.push(format!(
            "sweep set drift: current {:?} vs baseline {:?}",
            current.sweeps, baseline.sweeps
        ));
    }
    for ((name, cur), (_, base)) in current
        .counters
        .entries()
        .iter()
        .zip(baseline.counters.entries().iter())
    {
        if cur != base {
            errors.push(format!(
                "counter `{name}` drifted: current {cur} vs baseline {base} \
                 (counters are deterministic — this is a behaviour change)"
            ));
        }
    }
    if current.jobs == baseline.jobs {
        let allowed = |base: f64| base * (1.0 + tol.rel) + tol.abs_secs;
        if baseline.wall_secs >= tol.min_phase_secs
            && current.wall_secs > allowed(baseline.wall_secs)
        {
            errors.push(format!(
                "wall clock regressed: current {:.3}s vs baseline {:.3}s (limit {:.3}s)",
                current.wall_secs,
                baseline.wall_secs,
                allowed(baseline.wall_secs)
            ));
        }
        for phase in Phase::ALL {
            let base = baseline.phases.get(phase).as_secs_f64();
            let cur = current.phases.get(phase).as_secs_f64();
            if base >= tol.min_phase_secs && cur > allowed(base) {
                errors.push(format!(
                    "phase `{}` regressed: current {:.3}s vs baseline {:.3}s (limit {:.3}s)",
                    phase.name(),
                    cur,
                    base,
                    allowed(base)
                ));
            }
        }
    }
    match (&current.server, &baseline.server) {
        (Some(cur), Some(base)) => {
            // The deterministic server fields get the counter treatment:
            // exact equality, because drift means the server answered
            // differently, not that the machine was slow.
            let exact: [(&str, u64, u64); 8] = [
                ("records", cur.records, base.records),
                ("shards", cur.shards, base.shards),
                ("ops", cur.ops, base.ops),
                ("publishes", cur.publishes, base.publishes),
                ("searches", cur.searches, base.searches),
                ("requests", cur.requests, base.requests),
                ("expired", cur.expired, base.expired),
                ("hits", cur.hits, base.hits),
            ];
            for (name, c, b) in exact {
                if c != b {
                    errors.push(format!(
                        "server_bench `{name}` drifted: current {c} vs baseline {b} \
                         (the server bench is deterministic — this is a behaviour change)"
                    ));
                }
            }
            if cur.result_digest != base.result_digest {
                errors.push(format!(
                    "server_bench result digest drifted: current {:#018x} vs baseline {:#018x} \
                     (search answers or their ranking changed)",
                    cur.result_digest, base.result_digest
                ));
            }
            if current.jobs == baseline.jobs {
                let allowed = |base: f64| base * (1.0 + tol.rel) + tol.abs_secs;
                for (name, c, b) in [
                    ("build_secs", cur.build_secs, base.build_secs),
                    ("run_secs", cur.run_secs, base.run_secs),
                ] {
                    if b >= tol.min_phase_secs && c > allowed(b) {
                        errors.push(format!(
                            "server_bench `{name}` regressed: current {c:.3}s vs \
                             baseline {b:.3}s (limit {:.3}s)",
                            allowed(b)
                        ));
                    }
                }
            }
        }
        (None, None) => {}
        (cur, _) => {
            let (have, want) = if cur.is_some() {
                ("has", "lacks")
            } else {
                ("lacks", "has")
            };
            errors.push(format!(
                "server_bench presence mismatch: current {have} a server section but the \
                 baseline {want} one (regenerate the baseline or drop --server)"
            ));
        }
    }
    match (&current.city, &baseline.city) {
        (Some(cur), Some(base)) => {
            // Same treatment as the server bench: the replay is
            // deterministic, so every non-timing field must match exactly.
            let exact: [(&str, u64, u64); 14] = [
                ("nodes", cur.nodes, base.nodes),
                ("days", cur.days, base.days),
                ("routes", cur.routes, base.routes),
                ("seed", cur.seed, base.seed),
                ("prefetch", cur.prefetch, base.prefetch),
                ("contacts", cur.contacts, base.contacts),
                ("shards", cur.shards, base.shards),
                ("shards_loaded", cur.shards_loaded, base.shards_loaded),
                (
                    "shards_prefetched",
                    cur.shards_prefetched,
                    base.shards_prefetched,
                ),
                (
                    "peak_resident_contacts",
                    cur.peak_resident_contacts,
                    base.peak_resident_contacts,
                ),
                (
                    "peak_residue_nodes",
                    cur.peak_residue_nodes,
                    base.peak_residue_nodes,
                ),
                (
                    "residue_bytes_est",
                    cur.residue_bytes_est,
                    base.residue_bytes_est,
                ),
                ("queries", cur.queries, base.queries),
                ("files_delivered", cur.files_delivered, base.files_delivered),
            ];
            for (name, c, b) in exact {
                if c != b {
                    errors.push(format!(
                        "city_bench `{name}` drifted: current {c} vs baseline {b} \
                         (the city bench is deterministic — this is a behaviour change)"
                    ));
                }
            }
            if cur.result_digest != base.result_digest {
                errors.push(format!(
                    "city_bench result digest drifted: current {:#018x} vs baseline {:#018x} \
                     (the streamed simulation produced different deliveries)",
                    cur.result_digest, base.result_digest
                ));
            }
            if current.jobs == baseline.jobs {
                let allowed = |base: f64| base * (1.0 + tol.rel) + tol.abs_secs;
                for (name, c, b) in [
                    ("gen_secs", cur.gen_secs, base.gen_secs),
                    ("sim_secs", cur.sim_secs, base.sim_secs),
                ] {
                    if b >= tol.min_phase_secs && c > allowed(b) {
                        errors.push(format!(
                            "city_bench `{name}` regressed: current {c:.3}s vs \
                             baseline {b:.3}s (limit {:.3}s)",
                            allowed(b)
                        ));
                    }
                }
            }
        }
        (None, None) => {}
        (cur, _) => {
            let (have, want) = if cur.is_some() {
                ("has", "lacks")
            } else {
                ("lacks", "has")
            };
            errors.push(format!(
                "city_bench presence mismatch: current {have} a city section but the \
                 baseline {want} one (regenerate the baseline or drop --city)"
            ));
        }
    }
    errors
}

/// Number of simulation cells behind a rendered figure: series × points ×
/// replicates. Zero for an empty figure.
pub fn figure_cells(fig: &Figure, replicates: u32) -> u64 {
    let points: usize = fig.series.iter().map(|s| s.points.len()).sum();
    points as u64 * u64::from(replicates.max(1))
}

/// Runs the bench sweeps (fig 2a, fig 3a, and the fault sweep — one per
/// trace family plus the fault-injection path) under an observed
/// [`figures::RunContext`] and assembles the report. The figures themselves
/// are byte-identical to their unobserved counterparts and are discarded;
/// only the observations are kept.
pub fn run_bench(scale: Scale, exec: &ExecConfig) -> BenchReport {
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let started = Instant::now();
    let mut ctx = figures::RunContext::new(scale).exec(*exec).observed();
    let mut cells = 0u64;
    let mut sweeps = Vec::new();
    let runs: [fn(&mut figures::RunContext) -> Figure; 3] =
        [figures::fig2a, figures::fig3a, figures::fault_sweep];
    for run in runs {
        let fig = run(&mut ctx);
        cells += figure_cells(&fig, exec.replicates);
        sweeps.push(fig.id);
    }
    let telemetry = ctx.take_telemetry();
    BenchReport::new(
        scale_label,
        exec,
        cells,
        started.elapsed(),
        &telemetry,
        sweeps,
    )
}

/// Results of the metadata-server bench: a synthetic corpus at production
/// scale driven through a mixed operation storm.
///
/// Shape fields and operation counters (everything up to `result_digest`)
/// are deterministic — a pure function of the config and seed — and
/// [`compare`] diffs them exactly. The timings are thresholded like every
/// other wall-clock figure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerBench {
    /// Corpus size the server was seeded with.
    pub records: u64,
    /// Shard count of the server under test.
    pub shards: u64,
    /// Driver operations executed.
    pub ops: u64,
    /// Publishes (corpus seeding + driver publishes/republishes).
    pub publishes: u64,
    /// Searches the driver issued.
    pub searches: u64,
    /// Download requests recorded into the popularity estimator.
    pub requests: u64,
    /// Records dropped by the driver's periodic expiry passes.
    pub expired: u64,
    /// Total results returned across all searches.
    pub hits: u64,
    /// FNV-1a digest over every search answer in order — the strongest
    /// deterministic signal: any ranking or membership change flips it.
    pub result_digest: u64,
    /// Wall clock of corpus seeding.
    pub build_secs: f64,
    /// Wall clock of the driver.
    pub run_secs: f64,
    /// `ops / run_secs` (0 when degenerate).
    pub ops_per_sec: f64,
}

/// Configuration for [`run_server_bench`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerBenchConfig {
    /// Metadata records to seed the server with.
    pub records: u64,
    /// Mixed operations the driver executes.
    pub ops: u64,
    /// Shard count of the server under test.
    pub shards: usize,
    /// Master seed; every random stream is derived from it.
    pub seed: u64,
}

impl Default for ServerBenchConfig {
    /// The committed-baseline shape: a 10⁶-record corpus and a 10⁵-op storm
    /// over 8 shards.
    fn default() -> Self {
        ServerBenchConfig {
            records: 1_000_000,
            ops: 100_000,
            shards: 8,
            seed: 42,
        }
    }
}

/// Keyword vocabulary ceiling for synthetic names (3 tokens per record, so
/// the expected posting list at the default scale is `3·10⁶ / 16384 ≈ 180`
/// — every search still ranks a triple-digit candidate set, but the 10⁵-op
/// driver finishes in CI-friendly time).
const SERVER_BENCH_VOCAB: u64 = 16_384;

/// Vocabulary for a corpus of `records`: the ceiling at production scale,
/// shrunk for small test corpora so posting lists keep ~24 entries and
/// searches still hit (a 16 k vocabulary over a few hundred records would
/// leave almost every query empty). Any corpus ≥ 2¹⁷ records hits the
/// ceiling, so the default shape — and its committed digest — is unaffected.
fn server_bench_vocab(records: u64) -> u64 {
    SERVER_BENCH_VOCAB.min((records / 8).max(32))
}

/// Zipf exponent for record popularity and query skew.
const SERVER_BENCH_ZIPF_S: f64 = 0.8;

fn fnv_fold(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The synthetic corpus record `idx`: three vocabulary tokens for a name,
/// Zipf popularity by rank, and a TTL on every 20th record so the driver's
/// expiry passes have real work.
fn server_bench_record(idx: u64, vocab: u64, rng: &mut impl Rng) -> (Metadata, Popularity) {
    let t1 = rng.gen_range(0..vocab);
    let t2 = rng.gen_range(0..vocab);
    let t3 = rng.gen_range(0..vocab);
    let uri = Uri::new(format!("mbt://bench/file-{idx}")).expect("static scheme");
    let mut builder = Metadata::builder(format!("kw{t1} kw{t2} kw{t3}"), "FOX", uri);
    if idx.is_multiple_of(20) {
        builder = builder.ttl(SimDuration::from_hours(1 + idx % 24));
    }
    let rank_pop = 1.0 / ((idx + 1) as f64).powf(SERVER_BENCH_ZIPF_S);
    (builder.build(), Popularity::new(rank_pop))
}

/// Cumulative Zipf weights over `n` ranks for weighted sampling by binary
/// search (`O(log n)` per draw).
fn zipf_cumulative(n: u64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n as usize);
    let mut total = 0.0;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(SERVER_BENCH_ZIPF_S);
        cum.push(total);
    }
    cum
}

fn sample_zipf(cum: &[f64], rng: &mut impl Rng) -> u64 {
    let total = *cum.last().expect("non-empty corpus");
    let x = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= x) as u64
}

/// Seeds a [`MetadataServer`] with `cfg.records` synthetic records and
/// drives `cfg.ops` mixed operations through it: 70% Zipf-skewed searches,
/// 10% publishes (half fresh, half republish), 15% download-request
/// recordings, 5% point popularity updates — with a daily-style
/// `refresh_popularities` + `expire` pass every tenth of the run.
///
/// Fully deterministic for a given config: every stream is derived from
/// `cfg.seed` via [`derive_seed`], and the returned
/// [`result_digest`](ServerBench::result_digest) folds every search answer.
pub fn run_server_bench(cfg: &ServerBenchConfig) -> ServerBench {
    assert!(cfg.records > 0 && cfg.ops > 0, "degenerate bench config");
    let mut bench = ServerBench {
        records: cfg.records,
        shards: cfg.shards.max(1) as u64,
        ops: cfg.ops,
        ..ServerBench::default()
    };

    // Corpus seeding (timed separately: publish throughput).
    let vocab = server_bench_vocab(cfg.records);
    let build_started = Instant::now();
    let mut corpus_rng = stream(derive_seed(&[cfg.seed, 1]), "server-bench-corpus");
    let mut server = MetadataServer::with_shards(100, cfg.shards);
    for idx in 0..cfg.records {
        let (meta, popularity) = server_bench_record(idx, vocab, &mut corpus_rng);
        server.publish(meta, popularity);
        bench.publishes += 1;
    }
    bench.build_secs = build_started.elapsed().as_secs_f64();

    // The driver: Zipf-skewed reads against the full corpus.
    let cum = zipf_cumulative(cfg.records);
    let mut driver_rng = stream(derive_seed(&[cfg.seed, 2]), "server-bench-driver");
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fresh = cfg.records;
    let maintenance_every = (cfg.ops / 10).max(1);
    // Simulated clock: the run always spans ~10⁵ simulated seconds (~28 h)
    // regardless of `ops`, so TTLs lapse and the 24 h estimator window
    // slides mid-run even in shrunken test configs.
    let sim_step = (100_000 / cfg.ops).max(1);
    let run_started = Instant::now();
    for op in 0..cfg.ops {
        let now = SimTime::from_secs(op * sim_step);
        match op % 20 {
            0 => {
                // Fresh publish.
                let (meta, popularity) = server_bench_record(fresh, vocab, &mut driver_rng);
                fresh += 1;
                server.publish(meta, popularity);
                bench.publishes += 1;
            }
            1 => {
                // Republish of an existing (Zipf-hot) record.
                let idx = sample_zipf(&cum, &mut driver_rng);
                let (meta, popularity) = server_bench_record(idx, vocab, &mut driver_rng);
                server.publish(meta, popularity);
                bench.publishes += 1;
            }
            2..=4 => {
                let idx = sample_zipf(&cum, &mut driver_rng);
                let node = NodeId::new(driver_rng.gen_range(0..100u32));
                server.record_request(
                    &Uri::new(format!("mbt://bench/file-{idx}")).unwrap(),
                    node,
                    now,
                );
                bench.requests += 1;
            }
            5 => {
                let idx = sample_zipf(&cum, &mut driver_rng);
                let p = Popularity::new(driver_rng.gen_range(0.0..1.0));
                server.set_popularity(&Uri::new(format!("mbt://bench/file-{idx}")).unwrap(), p);
            }
            _ => {
                // Search: one- or two-token queries over the shared
                // vocabulary; with ~180 records per posting list the limit
                // of 10 exercises real ranking work on every hit.
                let t1 = driver_rng.gen_range(0..vocab);
                let two_tokens = driver_rng.gen_range(0..4u32) != 0;
                let text = if two_tokens {
                    let t2 = driver_rng.gen_range(0..vocab);
                    format!("kw{t1} kw{t2}")
                } else {
                    format!("kw{t1}")
                };
                let query = Query::new(text).expect("vocabulary tokens are valid");
                let results = server.search(&query, 10);
                bench.searches += 1;
                bench.hits += results.len() as u64;
                for meta in results {
                    digest = fnv_fold(digest, meta.uri().as_str().as_bytes());
                }
            }
        }
        if (op + 1) % maintenance_every == 0 {
            server.refresh_popularities(now);
            bench.expired += server.expire(now) as u64;
        }
    }
    bench.run_secs = run_started.elapsed().as_secs_f64();
    bench.ops_per_sec = rate_per_sec(cfg.ops, run_started.elapsed());
    digest = fnv_fold(digest, &bench.hits.to_be_bytes());
    digest = fnv_fold(digest, &(server.len() as u64).to_be_bytes());
    bench.result_digest = digest;
    bench
}

/// Runs the server bench and wraps it in a schema-versioned [`BenchReport`]
/// (scale label `"server"`, no sweep content) so the standard baseline
/// tooling — `to_json`, `from_json`, [`compare`], perf-check — applies
/// unchanged.
pub fn run_server_bench_report(cfg: &ServerBenchConfig, exec: &ExecConfig) -> BenchReport {
    let started = Instant::now();
    let bench = run_server_bench(cfg);
    let mut report = BenchReport::new(
        "server",
        exec,
        0,
        started.elapsed(),
        &Telemetry::default(),
        Vec::new(),
    );
    report.server = Some(bench);
    report
}

/// Results of the city-scale streaming bench: a seeded city-sized DieselNet
/// trace generated straight into on-disk shards, then stream-simulated with
/// bounded memory and pipelined shard prefetch.
///
/// Everything up to `result_digest` is deterministic — a pure function of
/// the config — and [`compare`] diffs those fields exactly. The timings are
/// thresholded like every other wall-clock figure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CityBench {
    /// Buses/nodes in the generated city trace.
    pub nodes: u64,
    /// Simulated days generated and replayed.
    pub days: u64,
    /// Route count of the generator (contact-graph spread).
    pub routes: u64,
    /// Master seed for generation and simulation.
    pub seed: u64,
    /// Shard prefetch depth the replay ran with.
    pub prefetch: u64,
    /// Contacts in the generated trace.
    pub contacts: u64,
    /// Shards the trace was written into.
    pub shards: u64,
    /// Shards decoded by the simulation (single-decode replay: one pass).
    pub shards_loaded: u64,
    /// Shards handed to the prefetch worker (≥ `shards_loaded` with
    /// prefetch on, equal after a full drain).
    pub shards_prefetched: u64,
    /// Peak contacts resident at once, counting prefetched shards.
    pub peak_resident_contacts: u64,
    /// Peak cold-node residue entries held by the [`crate::ResidueStore`].
    pub peak_residue_nodes: u64,
    /// Peak estimated residue bytes (model-based, deterministic).
    pub residue_bytes_est: u64,
    /// Queries generated by measured nodes.
    pub queries: u64,
    /// Complete-file deliveries to measured nodes.
    pub files_delivered: u64,
    /// FNV-1a digest over the deterministic simulation outputs, including
    /// the daily delivery series — any behavioural drift flips it.
    pub result_digest: u64,
    /// Wall clock of trace generation + shard writing.
    pub gen_secs: f64,
    /// Wall clock of the streamed simulation.
    pub sim_secs: f64,
    /// `contacts / sim_secs` (0 when degenerate).
    pub contacts_per_sec: f64,
}

/// Configuration for [`run_city_bench`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityBenchConfig {
    /// Buses in the generated DieselNet-style city trace.
    pub nodes: u32,
    /// Days to generate and simulate.
    pub days: u64,
    /// Routes to spread the buses over.
    pub routes: u32,
    /// Master seed.
    pub seed: u64,
    /// Shard prefetch depth for the replay (0 = serial).
    pub prefetch: usize,
}

impl Default for CityBenchConfig {
    /// The headline shape: a million-node, 30-day city trace spread over
    /// half a million routes, replayed with one shard of prefetch.
    fn default() -> Self {
        CityBenchConfig {
            nodes: 1_000_000,
            days: 30,
            routes: 500_000,
            seed: 42,
            prefetch: 1,
        }
    }
}

/// Generates the configured city trace into one-day shards under `dir`
/// (which must not already hold a trace) and stream-simulates it with the
/// CI city-scale parameters (10 files/day, 2-day TTL, 0.1% Internet
/// access, 3-day frequent window).
///
/// Deterministic for a given config: the digest folds every deterministic
/// [`crate::SimResult`] field including the daily delivery series, and the
/// shard/residue counters come straight from the telemetry layer.
///
/// # Errors
///
/// Returns a description of the first shard I/O failure.
pub fn run_city_bench(cfg: &CityBenchConfig, dir: &Path) -> Result<CityBench, String> {
    let mut bench = CityBench {
        nodes: u64::from(cfg.nodes),
        days: cfg.days,
        routes: u64::from(cfg.routes),
        seed: cfg.seed,
        prefetch: cfg.prefetch as u64,
        ..CityBench::default()
    };

    let gen_started = Instant::now();
    let mut writer =
        ShardWriter::create(dir, SimDuration::from_days(1)).map_err(|e| e.to_string())?;
    DieselNetConfig::new(cfg.nodes, cfg.days)
        .seed(cfg.seed)
        .routes(cfg.routes)
        .generate_into(&mut writer);
    let sharded = writer.finish().map_err(|e| e.to_string())?;
    bench.gen_secs = gen_started.elapsed().as_secs_f64();
    bench.contacts = dtn_trace::TraceSource::len(&sharded) as u64;
    bench.shards = sharded.shard_count() as u64;

    let params = SimParams {
        days: cfg.days,
        seed: cfg.seed,
        files_per_day: 10,
        ttl_days: 2,
        internet_fraction: 0.001,
        frequent_window: SimDuration::from_days(3),
        prefetch: cfg.prefetch,
        ..SimParams::default()
    };
    let mut telemetry = Telemetry::default();
    let sim_started = Instant::now();
    let result = run_simulation(&sharded, &params, Some(&mut telemetry));
    let sim_elapsed = sim_started.elapsed();
    bench.sim_secs = sim_elapsed.as_secs_f64();
    bench.contacts_per_sec = rate_per_sec(bench.contacts, sim_elapsed);

    bench.shards_loaded = telemetry.counters.shards_loaded;
    bench.shards_prefetched = telemetry.counters.shards_prefetched;
    bench.peak_resident_contacts = telemetry.counters.peak_resident_contacts;
    bench.peak_residue_nodes = telemetry.counters.peak_residue_nodes;
    bench.residue_bytes_est = telemetry.counters.residue_bytes_est;
    bench.queries = result.queries;
    bench.files_delivered = result.files_delivered;

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for value in [
        result.queries,
        result.metadata_delivered,
        result.files_delivered,
        result.contacts,
        result.metadata_broadcasts,
        result.file_broadcasts,
        result.queries_distributed,
    ] {
        digest = fnv_fold(digest, &value.to_be_bytes());
    }
    for day in result
        .daily_metadata_delivered
        .iter()
        .chain(result.daily_files_delivered.iter())
    {
        digest = fnv_fold(digest, &day.to_be_bytes());
    }
    bench.result_digest = digest;
    Ok(bench)
}

/// Runs the city bench and wraps it in a schema-versioned [`BenchReport`]
/// (scale label `"city"`, no sweep content) carrying the run's telemetry
/// counters, so the standard baseline tooling applies unchanged.
///
/// # Errors
///
/// Propagates [`run_city_bench`] failures.
pub fn run_city_bench_report(
    cfg: &CityBenchConfig,
    exec: &ExecConfig,
    dir: &Path,
) -> Result<BenchReport, String> {
    let started = Instant::now();
    let bench = run_city_bench(cfg, dir)?;
    let mut telemetry = Telemetry::default();
    telemetry.counters.contacts = bench.contacts;
    telemetry.counters.shards_loaded = bench.shards_loaded;
    telemetry.counters.shards_prefetched = bench.shards_prefetched;
    telemetry.counters.peak_resident_contacts = bench.peak_resident_contacts;
    telemetry.counters.peak_residue_nodes = bench.peak_residue_nodes;
    telemetry.counters.residue_bytes_est = bench.residue_bytes_est;
    let mut report = BenchReport::new("city", exec, 1, started.elapsed(), &telemetry, Vec::new());
    report.city = Some(bench);
    Ok(report)
}

/// Minimal recursive-descent JSON parser — just enough for
/// [`BenchReport::from_json`]. Numbers are f64 (exact for every integer a
/// report can hold); no surrogate-pair `\u` handling beyond the BMP.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn expect_str(&self, key: &str) -> Result<String, String> {
            match self {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(format!("`{key}` is not a string")),
            }
        }

        pub fn expect_num(&self, key: &str) -> Result<f64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(format!("`{key}` is not a number")),
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => parse_obj(bytes, pos),
            Some(b'[') => parse_arr(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_str(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_num(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {pos}", pos = *pos))
        }
    }

    fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
            }
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}", pos = *pos));
            }
            let key = parse_str(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(format!("expected : at byte {pos}", pos = *pos));
            }
            *pos += 1;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut telemetry = Telemetry::default();
        telemetry.counters.contacts = 120;
        telemetry.counters.bytes_moved = 9_876_543;
        telemetry
            .phases
            .add(Phase::ContactProcessing, Duration::from_millis(1500));
        telemetry
            .phases
            .add(Phase::Discovery, Duration::from_millis(600));
        BenchReport::new(
            "quick",
            &ExecConfig::default().jobs(2),
            27,
            Duration::from_secs(3),
            &telemetry,
            vec!["fig2a".into(), "fig3a".into()],
        )
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        // Timings round-trip at µs precision; everything else exactly.
        assert_eq!(parsed.schema, report.schema);
        assert_eq!(parsed.counters, report.counters);
        assert_eq!(parsed.cells, report.cells);
        assert_eq!(parsed.sweeps, report.sweeps);
        assert!((parsed.wall_secs - report.wall_secs).abs() < 1e-5);
        for phase in Phase::ALL {
            let (a, b) = (parsed.phases.get(phase), report.phases.get(phase));
            assert!(a.abs_diff(b) < Duration::from_micros(2), "{phase:?}");
        }
    }

    #[test]
    fn identical_reports_compare_clean() {
        let report = sample_report();
        assert!(compare(&report, &report, &Tolerance::default()).is_empty());
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.counters.contacts += 1;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("contacts"), "{errors:?}");
    }

    #[test]
    fn small_timing_jitter_passes_large_regression_fails() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.wall_secs = baseline.wall_secs * 1.1; // within 30%
        assert!(compare(&current, &baseline, &Tolerance::default()).is_empty());
        current.wall_secs = baseline.wall_secs * 2.0;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert!(
            errors.iter().any(|e| e.contains("wall clock")),
            "{errors:?}"
        );
    }

    #[test]
    fn timings_skipped_across_job_counts() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.jobs = baseline.jobs + 2;
        current.wall_secs = baseline.wall_secs * 10.0; // would fail same-jobs
        assert!(compare(&current, &baseline, &Tolerance::default()).is_empty());
    }

    #[test]
    fn schema_mismatch_is_a_hard_failure() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.schema = "mbt-bench-v999".to_string();
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("schema"));
    }

    #[test]
    fn zero_cell_report_has_zero_rate_not_nan() {
        let report = BenchReport::new(
            "empty",
            &ExecConfig::serial(),
            0,
            Duration::ZERO,
            &Telemetry::default(),
            Vec::new(),
        );
        assert_eq!(report.cells_per_sec, 0.0);
        assert!(report.cells_per_sec.is_finite());
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.cells, 0);
        assert_eq!(parsed.cells_per_sec, 0.0);
        assert!(compare(&parsed, &report, &Tolerance::default()).is_empty());
    }

    #[test]
    fn parser_ignores_unknown_keys() {
        let text = r#"{
            "schema": "mbt-bench-v1",
            "future_field": [1, 2, {"x": true}],
            "counters": {"contacts": 5, "from_the_future": 9},
            "phases": {"discovery": 0.5, "warp": 1.0},
            "cells": 3
        }"#;
        let report = BenchReport::from_json(text).unwrap();
        assert_eq!(report.counters.contacts, 5);
        assert_eq!(report.cells, 3);
        assert_eq!(
            report.phases.get(Phase::Discovery),
            Duration::from_millis(500)
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(BenchReport::from_json("").is_err());
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("{\"schema\": }").is_err());
        assert!(BenchReport::from_json("[1, 2").is_err());
        assert!(BenchReport::from_json("{} trailing").is_err());
    }

    #[test]
    fn git_describe_never_panics() {
        let desc = git_describe();
        assert!(!desc.is_empty());
    }

    /// A shrunken server bench — big enough that searches hit, expires
    /// fire, and every op branch runs; small enough for a debug test.
    fn tiny_server_config() -> ServerBenchConfig {
        ServerBenchConfig {
            records: 500,
            ops: 400,
            shards: 3,
            seed: 7,
        }
    }

    fn sample_server_report() -> BenchReport {
        let mut report = sample_report();
        report.server = Some(ServerBench {
            records: 500,
            shards: 3,
            ops: 400,
            publishes: 540,
            searches: 280,
            requests: 60,
            expired: 12,
            hits: 1_900,
            // Deliberately above 2^53: the hex-string encoding must carry
            // it exactly where a JSON double could not.
            result_digest: 0xdead_beef_cafe_f00d,
            build_secs: 0.8,
            run_secs: 1.6,
            ops_per_sec: 250.0,
        });
        report
    }

    #[test]
    fn server_report_round_trips_through_json() {
        let report = sample_server_report();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        let (got, want) = (
            parsed.server.as_ref().unwrap(),
            report.server.as_ref().unwrap(),
        );
        assert_eq!(
            got.result_digest, want.result_digest,
            "u64 digest must survive JSON"
        );
        assert_eq!(got.records, want.records);
        assert_eq!(got.hits, want.hits);
        assert!((got.run_secs - want.run_secs).abs() < 1e-9);
        assert!(compare(&parsed, &report, &Tolerance::default()).is_empty());
    }

    #[test]
    fn server_digest_drift_fails_exactly() {
        let baseline = sample_server_report();
        let mut current = baseline.clone();
        current.server.as_mut().unwrap().result_digest ^= 1;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("digest"), "{errors:?}");
    }

    #[test]
    fn server_section_presence_must_match_the_baseline() {
        let baseline = sample_server_report();
        let mut current = baseline.clone();
        current.server = None;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert!(errors.iter().any(|e| e.contains("presence")), "{errors:?}");
        // And the other direction.
        let errors = compare(&baseline, &current, &Tolerance::default());
        assert!(errors.iter().any(|e| e.contains("presence")), "{errors:?}");
    }

    #[test]
    fn server_timings_thresholded_only_at_equal_jobs() {
        let baseline = sample_server_report();
        let mut current = baseline.clone();
        current.server.as_mut().unwrap().run_secs *= 10.0;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert!(errors.iter().any(|e| e.contains("run_secs")), "{errors:?}");
        current.jobs += 1;
        assert!(compare(&current, &baseline, &Tolerance::default()).is_empty());
    }

    #[test]
    fn tiny_server_bench_repeats_bit_identically() {
        let cfg = tiny_server_config();
        let a = run_server_bench(&cfg);
        let b = run_server_bench(&cfg);
        // Every deterministic field matches; only wall clock may differ.
        assert_eq!(a.result_digest, b.result_digest);
        assert_eq!(
            (a.publishes, a.searches, a.requests, a.expired, a.hits),
            (b.publishes, b.searches, b.requests, b.expired, b.hits)
        );
        // The mix actually exercised every branch at this scale.
        assert!(a.searches > 0 && a.hits > 0, "searches never hit: {a:?}");
        assert!(a.requests > 0 && a.expired > 0, "no requests/expiry: {a:?}");
        assert!(a.publishes > cfg.records, "driver never published: {a:?}");
    }

    #[test]
    fn tiny_server_bench_digest_is_shard_count_invariant() {
        let base = run_server_bench(&tiny_server_config());
        for shards in [1, 8] {
            let cfg = ServerBenchConfig {
                shards,
                ..tiny_server_config()
            };
            let got = run_server_bench(&cfg);
            assert_eq!(
                got.result_digest, base.result_digest,
                "digest changed with {shards} shards"
            );
            assert_eq!(got.hits, base.hits);
            assert_eq!(got.expired, base.expired);
        }
    }

    #[test]
    fn server_bench_report_wrapper_is_a_valid_sweepless_report() {
        let report = run_server_bench_report(&tiny_server_config(), &ExecConfig::default().jobs(2));
        assert_eq!(report.scale, "server");
        assert_eq!(report.cells, 0);
        assert!(report.sweeps.is_empty());
        assert!(report.server.is_some());
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert!(compare(&parsed, &report, &Tolerance::default()).is_empty());
    }

    /// A shrunken city bench — enough shards that prefetch has real work,
    /// small enough for a debug test.
    fn tiny_city_config() -> CityBenchConfig {
        CityBenchConfig {
            nodes: 24,
            days: 4,
            routes: 8,
            seed: 5,
            prefetch: 1,
        }
    }

    fn city_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mbt-perf-test-city/{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_city_report() -> BenchReport {
        let mut report = sample_report();
        report.city = Some(CityBench {
            nodes: 24,
            days: 4,
            routes: 8,
            seed: 5,
            prefetch: 1,
            contacts: 900,
            shards: 4,
            shards_loaded: 4,
            shards_prefetched: 4,
            peak_resident_contacts: 480,
            peak_residue_nodes: 17,
            residue_bytes_est: 4_096,
            queries: 60,
            files_delivered: 12,
            // Above 2^53, like the server digest: must ride as a hex string.
            result_digest: 0xfeed_face_dead_0001,
            gen_secs: 0.4,
            sim_secs: 1.1,
            contacts_per_sec: 818.0,
        });
        report
    }

    #[test]
    fn city_report_round_trips_through_json() {
        let report = sample_city_report();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        let (got, want) = (parsed.city.as_ref().unwrap(), report.city.as_ref().unwrap());
        assert_eq!(
            got.result_digest, want.result_digest,
            "u64 digest must survive JSON"
        );
        assert_eq!(got.nodes, want.nodes);
        assert_eq!(got.shards_prefetched, want.shards_prefetched);
        assert_eq!(got.residue_bytes_est, want.residue_bytes_est);
        assert!((got.sim_secs - want.sim_secs).abs() < 1e-9);
        assert!(compare(&parsed, &report, &Tolerance::default()).is_empty());
    }

    #[test]
    fn city_counter_and_digest_drift_fail_exactly() {
        let baseline = sample_city_report();
        let mut current = baseline.clone();
        current.city.as_mut().unwrap().peak_residue_nodes += 1;
        current.city.as_mut().unwrap().result_digest ^= 1;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("peak_residue_nodes")),
            "{errors:?}"
        );
        assert!(errors.iter().any(|e| e.contains("digest")), "{errors:?}");
    }

    #[test]
    fn city_section_presence_must_match_the_baseline() {
        let baseline = sample_city_report();
        let mut current = baseline.clone();
        current.city = None;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert!(errors.iter().any(|e| e.contains("presence")), "{errors:?}");
        let errors = compare(&baseline, &current, &Tolerance::default());
        assert!(errors.iter().any(|e| e.contains("presence")), "{errors:?}");
    }

    #[test]
    fn city_timings_thresholded_only_at_equal_jobs() {
        let baseline = sample_city_report();
        let mut current = baseline.clone();
        current.city.as_mut().unwrap().sim_secs *= 10.0;
        let errors = compare(&current, &baseline, &Tolerance::default());
        assert!(errors.iter().any(|e| e.contains("sim_secs")), "{errors:?}");
        current.jobs += 1;
        assert!(compare(&current, &baseline, &Tolerance::default()).is_empty());
    }

    #[test]
    fn tiny_city_bench_repeats_bit_identically_at_any_prefetch_depth() {
        let cfg = tiny_city_config();
        let a = run_city_bench(&cfg, &city_dir("a")).unwrap();
        let b = run_city_bench(&cfg, &city_dir("b")).unwrap();
        assert_eq!(a.result_digest, b.result_digest);
        assert_eq!(
            (a.contacts, a.shards, a.queries, a.files_delivered),
            (b.contacts, b.shards, b.queries, b.files_delivered)
        );
        assert_eq!(a.peak_residue_nodes, b.peak_residue_nodes);
        assert_eq!(a.residue_bytes_est, b.residue_bytes_est);
        // Prefetch depth never changes the simulation, only the shard
        // counters that describe the replay itself.
        let serial =
            run_city_bench(&CityBenchConfig { prefetch: 0, ..cfg }, &city_dir("serial")).unwrap();
        assert_eq!(serial.result_digest, a.result_digest);
        assert_eq!(serial.queries, a.queries);
        assert_eq!(
            serial.shards_prefetched, 0,
            "serial replay prefetches nothing"
        );
        assert!(a.shards_prefetched >= a.shards_loaded);
        // Single-decode replay: the manifest supplies the pre-sim stats, so
        // the one simulation pass is the only decode.
        assert_eq!(a.shards_loaded, a.shards, "one decode per shard");
        assert!(a.contacts > 0 && a.shards > 1, "{a:?}");
    }

    #[test]
    fn city_bench_report_wrapper_is_a_valid_sweepless_report() {
        let report = run_city_bench_report(
            &tiny_city_config(),
            &ExecConfig::default().jobs(2),
            &city_dir("wrapper"),
        )
        .unwrap();
        assert_eq!(report.scale, "city");
        assert!(report.sweeps.is_empty());
        assert!(report.city.is_some());
        assert!(report.counters.contacts > 0);
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert!(compare(&parsed, &report, &Tolerance::default()).is_empty());
    }

    #[test]
    fn city_bench_overwrites_a_reused_directory_deterministically() {
        let dir = city_dir("reused");
        let first = run_city_bench(&tiny_city_config(), &dir).unwrap();
        let second = run_city_bench(&tiny_city_config(), &dir).unwrap();
        assert_eq!(first.result_digest, second.result_digest);
        assert_eq!(first.contacts, second.contacts);
    }
}
