//! Ablations of the design choices called out in `DESIGN.md`.
//!
//! - **Cooperation mode** (§IV-B/§V-B): cooperative vs tit-for-tat vs
//!   tit-for-tat with a free-rider population — measuring how much the
//!   credit mechanism costs/protects.
//! - **Discovery-first contact ordering** (§V): metadata before files within
//!   a contact vs the reverse.
//! - **Short-contact gating** (§V): skipping the file phase on contacts too
//!   short to be worth bulk transfer.

use dtn_trace::generators::NusConfig;
use dtn_trace::ContactTrace;
use mbt_core::{BroadcastOrdering, CooperationMode, MbtConfig, ProtocolSpec};

use crate::exec::{ExecConfig, ParallelRunner};
use crate::figures::Scale;
use crate::runner::{run_simulation, SimParams, SimResult};

/// One ablation configuration and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable configuration label.
    pub label: String,
    /// The result of the run.
    pub result: SimResult,
}

fn scale_trace(scale: Scale) -> ContactTrace {
    let (students, days) = match scale {
        Scale::Quick => (30, 6),
        Scale::Full => (80, 15),
    };
    NusConfig::new(students, days).seed(42).generate()
}

/// Runs every labelled configuration against `trace` on the runner's pool,
/// preserving input order.
fn run_rows(
    trace: &ContactTrace,
    configs: Vec<(String, SimParams)>,
    exec: &ExecConfig,
) -> Vec<AblationRow> {
    let runner = ParallelRunner::new(*exec);
    runner.run_all(&configs, |(label, params)| AblationRow {
        label: label.clone(),
        result: run_simulation(trace, params, None),
    })
}

fn scale_params(scale: Scale) -> SimParams {
    SimParams {
        days: match scale {
            Scale::Quick => 6,
            Scale::Full => 15,
        },
        seed: 42,
        ..SimParams::default()
    }
}

/// Cooperative vs tit-for-tat scheduling, full MBT.
pub fn cooperation_ablation(scale: Scale) -> Vec<AblationRow> {
    cooperation_ablation_with(scale, &ExecConfig::default())
}

/// [`cooperation_ablation`] with explicit execution.
pub fn cooperation_ablation_with(scale: Scale, exec: &ExecConfig) -> Vec<AblationRow> {
    let trace = scale_trace(scale);
    let configs = [CooperationMode::Cooperative, CooperationMode::TitForTat]
        .into_iter()
        .map(|mode| {
            (
                format!("cooperation={mode}"),
                SimParams {
                    protocol: ProtocolSpec::MBT,
                    config: MbtConfig::new().cooperation(mode),
                    ..scale_params(scale)
                },
            )
        })
        .collect();
    run_rows(&trace, configs, exec)
}

/// Discovery-first vs download-first contact ordering.
pub fn discovery_first_ablation(scale: Scale) -> Vec<AblationRow> {
    discovery_first_ablation_with(scale, &ExecConfig::default())
}

/// [`discovery_first_ablation`] with explicit execution.
pub fn discovery_first_ablation_with(scale: Scale, exec: &ExecConfig) -> Vec<AblationRow> {
    let trace = scale_trace(scale);
    let configs = [true, false]
        .into_iter()
        .map(|first| {
            (
                format!("discovery_first={first}"),
                SimParams {
                    config: MbtConfig::new().discovery_first(first),
                    ..scale_params(scale)
                },
            )
        })
        .collect();
    run_rows(&trace, configs, exec)
}

/// Two-phase (paper §V-A) vs rarest-first (BitTorrent-style) broadcast
/// ordering, cooperative mode.
pub fn ordering_ablation(scale: Scale) -> Vec<AblationRow> {
    ordering_ablation_with(scale, &ExecConfig::default())
}

/// [`ordering_ablation`] with explicit execution.
pub fn ordering_ablation_with(scale: Scale, exec: &ExecConfig) -> Vec<AblationRow> {
    let trace = scale_trace(scale);
    let configs = [BroadcastOrdering::TwoPhase, BroadcastOrdering::RarestFirst]
        .into_iter()
        .map(|ordering| {
            (
                format!("ordering={ordering}"),
                SimParams {
                    config: MbtConfig::new().ordering(ordering),
                    ..scale_params(scale)
                },
            )
        })
        .collect();
    run_rows(&trace, configs, exec)
}

/// Gating the file phase on minimum contact length (0 s, 60 s, 600 s).
pub fn short_contact_ablation(scale: Scale) -> Vec<AblationRow> {
    short_contact_ablation_with(scale, &ExecConfig::default())
}

/// [`short_contact_ablation`] with explicit execution.
pub fn short_contact_ablation_with(scale: Scale, exec: &ExecConfig) -> Vec<AblationRow> {
    let trace = scale_trace(scale);
    let configs = [0u64, 60, 600]
        .into_iter()
        .map(|min_secs| {
            (
                format!("min_download_contact_secs={min_secs}"),
                SimParams {
                    config: MbtConfig::new().min_download_contact_secs(min_secs),
                    ..scale_params(scale)
                },
            )
        })
        .collect();
    run_rows(&trace, configs, exec)
}

/// Failure injection: broadcast frame loss (0 %, 10 %, 30 %) and node churn
/// (0 %, 20 % of measured nodes dying mid-run), full MBT.
pub fn failure_ablation(scale: Scale) -> Vec<AblationRow> {
    failure_ablation_with(scale, &ExecConfig::default())
}

/// [`failure_ablation`] with explicit execution.
pub fn failure_ablation_with(scale: Scale, exec: &ExecConfig) -> Vec<AblationRow> {
    let trace = scale_trace(scale);
    let mut configs: Vec<(String, SimParams)> = Vec::new();
    for loss in [0.0, 0.1, 0.3] {
        configs.push((
            format!("broadcast_loss={loss:.1}"),
            SimParams {
                config: MbtConfig::new().broadcast_loss_rate(loss),
                ..scale_params(scale)
            },
        ));
    }
    let churn = 0.2;
    configs.push((
        format!("node_churn={churn:.1}"),
        SimParams {
            churn,
            ..scale_params(scale)
        },
    ));
    run_rows(&trace, configs, exec)
}

/// Metadata pollution (§I "fake files" / §III-B item f): no adversary vs a
/// 20 % polluter population, with and without publisher authentication.
pub fn pollution_ablation(scale: Scale) -> Vec<AblationRow> {
    pollution_ablation_with(scale, &ExecConfig::default())
}

/// [`pollution_ablation`] with explicit execution.
pub fn pollution_ablation_with(scale: Scale, exec: &ExecConfig) -> Vec<AblationRow> {
    let trace = scale_trace(scale);
    let configs = [
        ("clean", 0.0, false),
        ("polluted, no auth", 0.2, false),
        ("polluted, auth on", 0.2, true),
    ]
    .into_iter()
    .map(|(label, polluter_fraction, verify_metadata)| {
        (
            label.to_string(),
            SimParams {
                polluter_fraction,
                fakes_per_day: 4,
                verify_metadata,
                ..scale_params(scale)
            },
        )
    })
    .collect();
    run_rows(&trace, configs, exec)
}

/// Renders ablation rows as an aligned text table.
pub fn ablation_table(title: &str, rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:>36} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "configuration", "meta ratio", "file ratio", "queries", "meta bcasts", "file bcasts"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>36} {:>12.4} {:>12.4} {:>10} {:>12} {:>12}",
            r.label,
            r.result.metadata_ratio,
            r.result.file_ratio,
            r.result.queries,
            r.result.metadata_broadcasts,
            r.result.file_broadcasts
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooperation_ablation_runs_both_modes() {
        let rows = cooperation_ablation(Scale::Quick);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].label.contains("cooperative"));
        assert!(rows[1].label.contains("tit-for-tat"));
        for r in &rows {
            assert!(r.result.queries > 0);
        }
    }

    #[test]
    fn short_contact_gating_reduces_file_broadcasts() {
        let rows = short_contact_ablation(Scale::Quick);
        let open = &rows[0].result;
        let gated = &rows[2].result;
        assert!(
            gated.file_broadcasts <= open.file_broadcasts,
            "gating cannot increase file broadcasts"
        );
    }

    #[test]
    fn table_renders() {
        let rows = discovery_first_ablation(Scale::Quick);
        let t = ablation_table("discovery-first", &rows);
        assert!(t.contains("discovery_first=true"));
        assert!(t.contains("discovery_first=false"));
    }

    #[test]
    fn authentication_recovers_polluted_delivery() {
        let rows = pollution_ablation(Scale::Quick);
        let clean = &rows[0].result;
        let polluted = &rows[1].result;
        let defended = &rows[2].result;
        // Pollution cannot help, and authentication cannot hurt relative to
        // being polluted without it.
        assert!(
            polluted.file_ratio <= clean.file_ratio + 1e-9,
            "pollution should not improve delivery: {} vs {}",
            polluted.file_ratio,
            clean.file_ratio
        );
        assert!(
            defended.file_ratio + 1e-9 >= polluted.file_ratio,
            "auth should not be worse than no auth under attack: {} vs {}",
            defended.file_ratio,
            polluted.file_ratio
        );
    }

    #[test]
    fn loss_degrades_delivery_monotonically_ish() {
        let rows = failure_ablation(Scale::Quick);
        let no_loss = &rows[0].result;
        let heavy_loss = &rows[2].result;
        assert!(
            heavy_loss.file_ratio <= no_loss.file_ratio,
            "30% loss should not beat lossless: {} vs {}",
            heavy_loss.file_ratio,
            no_loss.file_ratio
        );
        assert!(
            heavy_loss.metadata_ratio <= no_loss.metadata_ratio,
            "metadata under loss: {} vs {}",
            heavy_loss.metadata_ratio,
            no_loss.metadata_ratio
        );
    }

    #[test]
    fn churn_reduces_queries_and_runs_clean() {
        let rows = failure_ablation(Scale::Quick);
        let baseline = &rows[0].result;
        let churned = rows.last().unwrap();
        assert!(churned.label.contains("churn"));
        assert!(
            churned.result.queries <= baseline.queries,
            "dead nodes must stop generating queries"
        );
    }

    #[test]
    fn ordering_ablation_runs_both_policies() {
        let rows = ordering_ablation(Scale::Quick);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].label.contains("two-phase"));
        assert!(rows[1].label.contains("rarest-first"));
        for r in &rows {
            assert!(r.result.file_broadcasts > 0);
        }
    }
}
