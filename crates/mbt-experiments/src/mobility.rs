//! Cross-mobility comparison (extension).
//!
//! The paper evaluates on two mobility regimes (sparse pair-wise buses,
//! dense classroom cliques). This experiment runs the three protocol
//! variants over *four* regimes — adding the clustered community model and
//! organic random-waypoint mobility — to locate where each MBT mechanism
//! pays: query distribution matters on sparse/clustered traces, broadcast
//! cliques matter on dense ones.

use dtn_trace::generators::{CommunityConfig, DieselNetConfig, NusConfig, RandomWaypointConfig};
use dtn_trace::{AggregateGraph, ContactTrace, SimDuration, SECONDS_PER_DAY};
use mbt_core::ProtocolSpec;

use crate::figures::Scale;
use crate::runner::{run_simulation, SimParams, SimResult};

/// One row: a mobility model × protocol result, with trace shape context.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityRow {
    /// Mobility model name.
    pub model: &'static str,
    /// Protocol variant.
    pub protocol: ProtocolSpec,
    /// Contacts in the trace.
    pub contacts: usize,
    /// Mean clique size of the trace.
    pub mean_clique: f64,
    /// Aggregate-graph density.
    pub density: f64,
    /// The simulation result.
    pub result: SimResult,
}

fn models(scale: Scale) -> Vec<(&'static str, ContactTrace, u64)> {
    let days = match scale {
        Scale::Quick => 6,
        Scale::Full => 12,
    };
    let n = match scale {
        Scale::Quick => 24,
        Scale::Full => 48,
    };
    vec![
        (
            "dieselnet",
            DieselNetConfig::new(n, days).seed(42).generate(),
            3,
        ),
        ("nus", NusConfig::new(n, days).seed(42).generate(), 1),
        (
            "community",
            CommunityConfig::new(n, days).seed(42).generate(),
            1,
        ),
        (
            "rwp",
            RandomWaypointConfig::new(n.min(24), days.min(2) * SECONDS_PER_DAY)
                .seed(42)
                .arena_m(800.0)
                .generate(),
            1,
        ),
    ]
}

/// Runs every protocol over every mobility model.
pub fn mobility_comparison(scale: Scale) -> Vec<MobilityRow> {
    let days = match scale {
        Scale::Quick => 6,
        Scale::Full => 12,
    };
    let mut rows = Vec::new();
    for (model, trace, frequent_days) in models(scale) {
        if trace.node_count() < 2 {
            continue;
        }
        let graph = AggregateGraph::from_trace(&trace);
        let mean_clique =
            trace.iter().map(|c| c.size()).sum::<usize>() as f64 / trace.len().max(1) as f64;
        for protocol in ProtocolSpec::TRIAD {
            let params = SimParams::builder()
                .protocol(protocol)
                .days(days)
                .seed(42)
                .files_per_day(20)
                .frequent_window(SimDuration::from_days(frequent_days))
                .build();
            rows.push(MobilityRow {
                model,
                protocol,
                contacts: trace.len(),
                mean_clique,
                density: graph.density(),
                result: run_simulation(&trace, &params, None),
            });
        }
    }
    rows
}

/// Renders the comparison as a table.
pub fn mobility_table(rows: &[MobilityRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>11} {:>8} {:>9} {:>8} {:>8} {:>11} {:>11}",
        "model", "protocol", "contacts", "clique", "density", "meta ratio", "file ratio"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>11} {:>8} {:>9} {:>8.1} {:>8.3} {:>11.4} {:>11.4}",
            r.model,
            r.protocol,
            r.contacts,
            r.mean_clique,
            r.density,
            r.result.metadata_ratio,
            r.result.file_ratio
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_models_and_protocols() {
        let rows = mobility_comparison(Scale::Quick);
        let models: std::collections::BTreeSet<&str> = rows.iter().map(|r| r.model).collect();
        assert!(models.len() >= 3, "models: {models:?}");
        for model in &models {
            let per: Vec<&MobilityRow> = rows.iter().filter(|r| &r.model == model).collect();
            assert_eq!(per.len(), 3, "{model} missing protocols");
        }
    }

    #[test]
    fn mbt_never_loses_to_mbtqm_on_metadata() {
        let rows = mobility_comparison(Scale::Quick);
        let models: std::collections::BTreeSet<&str> = rows.iter().map(|r| r.model).collect();
        for model in models {
            let get = |p: ProtocolSpec| {
                rows.iter()
                    .find(|r| r.model == model && r.protocol == p)
                    .unwrap()
            };
            let mbt = get(ProtocolSpec::MBT);
            let qm = get(ProtocolSpec::MBT_QM);
            assert!(
                mbt.result.metadata_ratio + 1e-9 >= qm.result.metadata_ratio,
                "{model}: MBT {} < MBT-QM {}",
                mbt.result.metadata_ratio,
                qm.result.metadata_ratio
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = mobility_comparison(Scale::Quick);
        let t = mobility_table(&rows);
        assert_eq!(t.lines().count(), rows.len() + 1);
        assert!(t.contains("community"));
    }
}
