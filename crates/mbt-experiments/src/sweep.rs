//! Parameter sweeps producing paper-style series.

use dtn_trace::ContactTrace;
use mbt_core::ProtocolKind;

use crate::runner::{run_simulation, SimParams, SimResult};

/// One point of a sweep: the x value and both delivery ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Metadata delivery ratio at this point.
    pub metadata_ratio: f64,
    /// File delivery ratio at this point.
    pub file_ratio: f64,
    /// The full result, for deeper inspection.
    pub result: SimResult,
}

/// One protocol's curve across the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSeries {
    /// The protocol variant.
    pub protocol: ProtocolKind,
    /// Points in sweep order.
    pub points: Vec<SeriesPoint>,
}

/// A reproduced figure: every protocol's series over the same x values.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Experiment id (e.g. "fig2a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The x-axis label.
    pub x_label: String,
    /// One series per protocol.
    pub series: Vec<ProtocolSeries>,
}

impl Figure {
    /// The series for `protocol`, if present.
    pub fn series_for(&self, protocol: ProtocolKind) -> Option<&ProtocolSeries> {
        self.series.iter().find(|s| s.protocol == protocol)
    }
}

/// Runs a sweep: for each x value, `setup` produces the trace and parameters
/// (protocol is overridden per series), and every [`ProtocolKind`] is
/// simulated.
///
/// `setup` is called once per (x, protocol) pair; returning the same trace
/// for every protocol at a given x is the caller's responsibility if trace
/// reuse matters (see [`sweep_shared_trace`] for the common case).
pub fn sweep<F>(id: &str, title: &str, x_label: &str, xs: &[f64], mut setup: F) -> Figure
where
    F: FnMut(f64) -> (ContactTrace, SimParams),
{
    let mut series: Vec<ProtocolSeries> = ProtocolKind::ALL
        .iter()
        .map(|&p| ProtocolSeries {
            protocol: p,
            points: Vec::with_capacity(xs.len()),
        })
        .collect();
    for &x in xs {
        let (trace, params) = setup(x);
        for s in series.iter_mut() {
            let mut p = params.clone();
            p.protocol = s.protocol;
            let result = run_simulation(&trace, &p);
            s.points.push(SeriesPoint {
                x,
                metadata_ratio: result.metadata_ratio,
                file_ratio: result.file_ratio,
                result,
            });
        }
    }
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        series,
    }
}

/// Like [`sweep`] but with one fixed trace shared by every x value — the
/// common case when the swept parameter does not affect mobility.
pub fn sweep_shared_trace<F>(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    trace: &ContactTrace,
    mut params_for: F,
) -> Figure
where
    F: FnMut(f64) -> SimParams,
{
    sweep(id, title, x_label, xs, |x| (trace.clone(), params_for(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;

    #[test]
    fn sweep_produces_full_grid() {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let fig = sweep_shared_trace(
            "test",
            "test sweep",
            "x",
            &[0.2, 0.6],
            &trace,
            |x| SimParams {
                internet_fraction: x,
                files_per_day: 5,
                days: 5,
                seed: 1,
                ..SimParams::default()
            },
        );
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 0.2);
        }
        assert!(fig.series_for(ProtocolKind::MbtQm).is_some());
    }

    #[test]
    fn ratios_copied_from_results() {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let fig = sweep_shared_trace("t", "t", "x", &[0.5], &trace, |x| SimParams {
            internet_fraction: x,
            files_per_day: 5,
            days: 5,
            ..SimParams::default()
        });
        for s in &fig.series {
            for p in &s.points {
                assert_eq!(p.metadata_ratio, p.result.metadata_ratio);
                assert_eq!(p.file_ratio, p.result.file_ratio);
            }
        }
    }
}
