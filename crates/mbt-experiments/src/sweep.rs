//! Parameter sweeps producing paper-style series.

use dtn_trace::ContactTrace;
use mbt_core::ProtocolSpec;

use crate::runner::{run_simulation, SimParams, SimResult};

/// Summary statistics of one delivery ratio across replicate runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatioSummary {
    /// Mean ratio across replicates.
    pub mean: f64,
    /// Smallest replicate ratio.
    pub min: f64,
    /// Largest replicate ratio.
    pub max: f64,
    /// Sample standard deviation (0 with fewer than two replicates).
    pub stddev: f64,
    /// Number of replicates summarised.
    pub n: u32,
}

impl RatioSummary {
    /// Summarises `samples`. The mean is accumulated in sample order, so the
    /// result is bit-identical for a fixed sample list. An empty sample list
    /// (e.g. every replicate lost to heavy churn) yields the all-zero
    /// default rather than NaN.
    pub fn from_samples(samples: &[f64]) -> RatioSummary {
        if samples.is_empty() {
            return RatioSummary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        RatioSummary {
            mean,
            min,
            max,
            stddev,
            n: n as u32,
        }
    }
}

/// One point of a sweep: the x value and both delivery ratios, summarised
/// over however many replicate runs produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Metadata delivery ratio at this point (mean across replicates).
    pub metadata_ratio: f64,
    /// File delivery ratio at this point (mean across replicates).
    pub file_ratio: f64,
    /// Replicate spread of the metadata ratio.
    pub metadata: RatioSummary,
    /// Replicate spread of the file ratio.
    pub file: RatioSummary,
    /// The full result: the run itself for a single run, or every
    /// replicate merged (pooled counts) for a replicated point.
    pub result: SimResult,
}

impl SeriesPoint {
    /// A point backed by one simulation run.
    pub fn single(x: f64, result: SimResult) -> SeriesPoint {
        SeriesPoint::from_replicates(x, vec![result])
    }

    /// A point summarising one or more replicate runs: the headline ratios
    /// are means of the per-replicate ratios, and `result` pools counts via
    /// [`SimResult::merge`]. Panics on an empty replicate list.
    pub fn from_replicates(x: f64, replicates: Vec<SimResult>) -> SeriesPoint {
        assert!(
            !replicates.is_empty(),
            "SeriesPoint needs at least one replicate"
        );
        let meta_samples: Vec<f64> = replicates.iter().map(|r| r.metadata_ratio).collect();
        let file_samples: Vec<f64> = replicates.iter().map(|r| r.file_ratio).collect();
        let metadata = RatioSummary::from_samples(&meta_samples);
        let file = RatioSummary::from_samples(&file_samples);
        let mut iter = replicates.into_iter();
        let mut result = iter.next().expect("non-empty");
        for r in iter {
            result.merge(&r);
        }
        SeriesPoint {
            x,
            metadata_ratio: metadata.mean,
            file_ratio: file.mean,
            metadata,
            file,
            result,
        }
    }
}

/// One protocol's curve across the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSeries {
    /// The protocol variant.
    pub protocol: ProtocolSpec,
    /// Points in sweep order.
    pub points: Vec<SeriesPoint>,
}

/// A reproduced figure: every protocol's series over the same x values.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Experiment id (e.g. "fig2a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The x-axis label.
    pub x_label: String,
    /// One series per protocol.
    pub series: Vec<ProtocolSeries>,
}

impl Figure {
    /// The series for `protocol`, if present. Accepts a [`ProtocolSpec`] or
    /// a legacy [`mbt_core::ProtocolKind`].
    pub fn series_for(&self, protocol: impl Into<ProtocolSpec>) -> Option<&ProtocolSeries> {
        let protocol = protocol.into();
        self.series.iter().find(|s| s.protocol == protocol)
    }
}

/// Runs a sweep: for each x value, `setup` produces the trace and parameters
/// (protocol is overridden per series), and every triad spec
/// ([`ProtocolSpec::TRIAD`]) is simulated.
///
/// `setup` is called once per (x, protocol) pair; returning the same trace
/// for every protocol at a given x is the caller's responsibility if trace
/// reuse matters (see [`sweep_shared_trace`] for the common case).
pub fn sweep<F>(id: &str, title: &str, x_label: &str, xs: &[f64], mut setup: F) -> Figure
where
    F: FnMut(f64) -> (ContactTrace, SimParams),
{
    let mut series: Vec<ProtocolSeries> = ProtocolSpec::TRIAD
        .iter()
        .map(|&p| ProtocolSeries {
            protocol: p,
            points: Vec::with_capacity(xs.len()),
        })
        .collect();
    for &x in xs {
        let (trace, params) = setup(x);
        for s in series.iter_mut() {
            let mut p = params.clone();
            p.protocol = s.protocol;
            let result = run_simulation(&trace, &p, None);
            s.points.push(SeriesPoint::single(x, result));
        }
    }
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        series,
    }
}

/// Like [`sweep`] but with one fixed trace shared by every x value — the
/// common case when the swept parameter does not affect mobility.
pub fn sweep_shared_trace<F>(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    trace: &ContactTrace,
    mut params_for: F,
) -> Figure
where
    F: FnMut(f64) -> SimParams,
{
    sweep(id, title, x_label, xs, |x| (trace.clone(), params_for(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;

    #[test]
    fn sweep_produces_full_grid() {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let fig = sweep_shared_trace("test", "test sweep", "x", &[0.2, 0.6], &trace, |x| {
            SimParams {
                internet_fraction: x,
                files_per_day: 5,
                days: 5,
                seed: 1,
                ..SimParams::default()
            }
        });
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 0.2);
        }
        assert!(fig.series_for(ProtocolSpec::MBT_QM).is_some());
    }

    #[test]
    fn empty_ratio_summary_is_zero_not_nan() {
        let s = RatioSummary::from_samples(&[]);
        assert_eq!(s, RatioSummary::default());
        assert!(s.mean.is_finite() && s.stddev.is_finite());
    }

    #[test]
    fn ratios_copied_from_results() {
        let trace = NusConfig::new(20, 5).seed(3).generate();
        let fig = sweep_shared_trace("t", "t", "x", &[0.5], &trace, |x| SimParams {
            internet_fraction: x,
            files_per_day: 5,
            days: 5,
            ..SimParams::default()
        });
        for s in &fig.series {
            for p in &s.points {
                assert_eq!(p.metadata_ratio, p.result.metadata_ratio);
                assert_eq!(p.file_ratio, p.result.file_ratio);
            }
        }
    }
}
