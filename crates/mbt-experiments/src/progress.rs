//! Delivery progression over time (extension).
//!
//! The paper reports steady-state delivery ratios; this experiment shows the
//! *trajectory*: cumulative deliveries per day for each protocol variant,
//! exposing warm-up (metadata must spread before files flow) and the
//! day-boundary workload rhythm.

use dtn_trace::generators::NusConfig;
use mbt_core::ProtocolSpec;

use crate::exec::{ExecConfig, ParallelRunner};
use crate::figures::Scale;
use crate::runner::{run_simulation, SimParams};

/// One protocol's cumulative daily trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSeries {
    /// The protocol variant.
    pub protocol: ProtocolSpec,
    /// Total queries over the run.
    pub queries: u64,
    /// Cumulative metadata deliveries by end of each day.
    pub cumulative_metadata: Vec<u64>,
    /// Cumulative file deliveries by end of each day.
    pub cumulative_files: Vec<u64>,
}

/// Runs the progression experiment on the NUS-style trace.
pub fn delivery_progress(scale: Scale) -> Vec<ProgressSeries> {
    delivery_progress_with(scale, &ExecConfig::default())
}

/// [`delivery_progress`] with explicit execution: the three protocol runs
/// execute on the runner's pool, with results collected in protocol order.
pub fn delivery_progress_with(scale: Scale, exec: &ExecConfig) -> Vec<ProgressSeries> {
    let (students, days) = match scale {
        Scale::Quick => (30, 6),
        Scale::Full => (80, 15),
    };
    let trace = NusConfig::new(students, days).seed(42).generate();
    let runner = ParallelRunner::new(*exec);
    runner.run_all(&ProtocolSpec::TRIAD, |&protocol| {
        let r = run_simulation(
            &trace,
            &SimParams::builder()
                .protocol(protocol)
                .days(days)
                .seed(42)
                .build(),
            None,
        );
        let cumulate = |v: &[u64]| {
            v.iter()
                .scan(0u64, |acc, &x| {
                    *acc += x;
                    Some(*acc)
                })
                .collect::<Vec<u64>>()
        };
        ProgressSeries {
            protocol,
            queries: r.queries,
            cumulative_metadata: cumulate(&r.daily_metadata_delivered),
            cumulative_files: cumulate(&r.daily_files_delivered),
        }
    })
}

/// Renders the progression as a day-by-day table.
pub fn progress_table(series: &[ProgressSeries]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let days = series.first().map_or(0, |s| s.cumulative_metadata.len());
    let mut header = format!("{:>4}", "day");
    for s in series {
        let _ = write!(header, " | {:>9}.meta {:>9}.file", s.protocol, s.protocol);
    }
    let _ = writeln!(out, "{header}");
    for d in 0..days {
        let mut row = format!("{d:>4}");
        for s in series {
            let _ = write!(
                row,
                " | {:>14} {:>14}",
                s.cumulative_metadata[d], s.cumulative_files[d]
            );
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectories_are_monotone_nondecreasing() {
        for s in delivery_progress(Scale::Quick) {
            for w in s.cumulative_metadata.windows(2) {
                assert!(w[1] >= w[0], "{}: metadata trajectory dipped", s.protocol);
            }
            for w in s.cumulative_files.windows(2) {
                assert!(w[1] >= w[0], "{}: file trajectory dipped", s.protocol);
            }
        }
    }

    #[test]
    fn metadata_leads_files_every_day() {
        for s in delivery_progress(Scale::Quick) {
            for (m, f) in s.cumulative_metadata.iter().zip(&s.cumulative_files) {
                assert!(m >= f, "{}: files outran metadata", s.protocol);
            }
        }
    }

    #[test]
    fn table_has_one_row_per_day() {
        let series = delivery_progress(Scale::Quick);
        let t = progress_table(&series);
        assert_eq!(t.lines().count(), 7); // header + 6 days
    }
}
