//! Text and CSV rendering of reproduced figures.

use std::fmt::Write as _;

use crate::capacity::CapacityRow;
use crate::sweep::Figure;

/// Renders a figure as an aligned text table with one column pair
/// (metadata ratio, file ratio) per protocol — the rows/series the paper's
/// plots report.
pub fn figure_table(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ({}) ==", fig.title, fig.id);
    let mut header = format!("{:>22}", fig.x_label);
    for s in &fig.series {
        let _ = write!(header, " | {:>9}.meta {:>9}.file", s.protocol, s.protocol);
    }
    let _ = writeln!(out, "{header}");
    let n_points = fig.series.first().map_or(0, |s| s.points.len());
    for i in 0..n_points {
        let x = fig.series[0].points[i].x;
        let mut row = format!("{x:>22.3}");
        for s in &fig.series {
            let p = &s.points[i];
            let _ = write!(row, " | {:>14.4} {:>14.4}", p.metadata_ratio, p.file_ratio);
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders a figure as CSV: `x,protocol,metadata_ratio,file_ratio,
/// metadata_stddev,file_stddev,replicates,queries,metadata_delivered,
/// files_delivered`. The stddev columns carry the replicate spread (0 when a
/// point was produced by a single run).
pub fn figure_csv(fig: &Figure) -> String {
    let mut out = String::from(
        "x,protocol,metadata_ratio,file_ratio,metadata_stddev,file_stddev,\
         replicates,queries,metadata_delivered,files_delivered\n",
    );
    for s in &fig.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6},{:.6},{:.6},{},{},{},{}",
                p.x,
                s.protocol,
                p.metadata_ratio,
                p.file_ratio,
                p.metadata.stddev,
                p.file.stddev,
                p.metadata.n,
                p.result.queries,
                p.result.metadata_delivered,
                p.result.files_delivered
            );
        }
    }
    out
}

/// Renders a figure as CSV with delivery *delay* columns alongside the
/// ratios: `x,protocol,metadata_ratio,file_ratio,metadata_delay_hours,
/// file_delay_hours,replicates,queries,metadata_delivered,files_delivered`.
/// Delay cells are the pooled mean delays in hours, blank when a point saw
/// no deliveries at all. The head-to-head figures are rendered with this;
/// the legacy triad figures keep [`figure_csv`] untouched.
pub fn figure_delay_csv(fig: &Figure) -> String {
    let mut out = String::from(
        "x,protocol,metadata_ratio,file_ratio,metadata_delay_hours,file_delay_hours,\
         replicates,queries,metadata_delivered,files_delivered\n",
    );
    let delay_cell = |d: Option<f64>| d.map_or(String::new(), |h| format!("{h:.3}"));
    for s in &fig.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6},{},{},{},{},{},{}",
                p.x,
                s.protocol,
                p.metadata_ratio,
                p.file_ratio,
                delay_cell(p.result.mean_metadata_delay_hours),
                delay_cell(p.result.mean_file_delay_hours),
                p.metadata.n,
                p.result.queries,
                p.result.metadata_delivered,
                p.result.files_delivered
            );
        }
    }
    out
}

/// Renders the §V capacity table.
pub fn capacity_table_text(rows: &[CapacityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>12} {:>14} {:>14} {:>14} {:>14}",
        "n", "bcast (n-1)/n", "pair 1/n", "bcast (sim)", "pair (sim)", "slots bcast", "slots pair"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>12.4} {:>12.4} {:>14.4} {:>14.4} {:>14} {:>14}",
            r.n,
            r.broadcast,
            r.pairwise,
            r.broadcast_sim,
            r.pairwise_sim,
            r.slots_broadcast,
            r.slots_pairwise
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::capacity_table;
    use crate::runner::SimResult;
    use crate::sweep::{ProtocolSeries, SeriesPoint};
    use mbt_core::ProtocolSpec;

    fn tiny_figure() -> Figure {
        Figure {
            id: "figX".into(),
            title: "test".into(),
            x_label: "x".into(),
            series: vec![ProtocolSeries {
                protocol: ProtocolSpec::MBT,
                points: vec![SeriesPoint::single(
                    0.5,
                    SimResult {
                        metadata_ratio: 0.75,
                        file_ratio: 0.5,
                        mean_metadata_delay_hours: Some(2.25),
                        ..SimResult::default()
                    },
                )],
            }],
        }
    }

    #[test]
    fn table_mentions_everything() {
        let t = figure_table(&tiny_figure());
        assert!(t.contains("figX"));
        assert!(t.contains("MBT"));
        assert!(t.contains("0.7500"));
        assert!(t.contains("0.5000"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_csv(&tiny_figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("x,protocol"));
        assert!(lines[0].contains("metadata_stddev,file_stddev"));
        assert!(lines[1].starts_with("0.5,MBT,0.750000,0.500000,0.000000,0.000000,1"));
    }

    #[test]
    fn delay_csv_renders_delays_and_blanks() {
        let csv = figure_delay_csv(&tiny_figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("metadata_delay_hours,file_delay_hours"));
        // Metadata delay present, file delay blank (no file deliveries).
        assert!(
            lines[1].starts_with("0.5,MBT,0.750000,0.500000,2.250,,1"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn capacity_text_renders_rows() {
        let text = capacity_table_text(&capacity_table(4, 10));
        assert_eq!(text.lines().count(), 4); // header + n=2,3,4
        assert!(text.contains("0.5000"));
    }
}
