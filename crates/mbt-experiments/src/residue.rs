//! Compact residue storage for dormant (cold) nodes — the second
//! city-scale memory seam, behind the lazy arena.
//!
//! A million-node month keeps only the *active* population resident as
//! [`MbtNode`](mbt_core::MbtNode)s, but every dormant node still owns a
//! residue: buffered `(query, expiry)` pairs awaiting materialization and a
//! spilled credit ledger. The old representation — a
//! `BTreeMap<NodeId, ColdNodeState>` of per-node `Vec`s holding un-interned
//! query text — made that residue the dominant allocation at city scale:
//! city traces issue the same few thousand query strings from millions of
//! nodes, so almost every byte was a duplicate.
//!
//! [`ResidueStore`] packs the same data three ways:
//!
//! - **Interned queries**: one [`Query`] (an `Arc` around the text and its
//!   tokens) per distinct string, shared across every node that buffered
//!   it, reference-counted so the pool shrinks as residue drains. `Query`
//!   equality, ordering and hashing are content-based, so substituting the
//!   pooled handle for a caller's equal copy is behaviourally invisible.
//! - **Packed entries**: per-node residue lives in exactly-sized
//!   `Box<[…]>` slices (no `Vec` growth slack), indexed by a dense
//!   slot vector exactly like the node arena itself.
//! - **Compacting prune**: the day-boundary expiry sweep rebuilds the
//!   store — entries, index and intern pool — from the survivors, so
//!   memory returns to the floor after each decay instead of ratcheting.
//!
//! The store also meters itself: [`ResidueStore::peak_nodes`] and
//! [`ResidueStore::peak_bytes_est`] feed the `peak_residue_nodes` /
//! `residue_bytes_est` telemetry counters. The byte figure is an estimate
//! built from data-structure sizes, but a *deterministic* one — a pure
//! function of the event stream, never of allocator behaviour — so it
//! merges and compares like every other counter.
//!
//! # Determinism contract
//!
//! Queries preserve **insertion order** per node (`MbtNode::add_query`
//! dedups by text keeping the first occurrence, so replay order is
//! observable). The intern pool is a hash map but is only ever probed by
//! key — nothing iterates it — so its order cannot leak into behaviour.
//! `tests/prefetch_equivalence.rs` and the golden figure suites pin the
//! store byte-identical to the `BTreeMap` representation it replaced.

use std::collections::HashMap;
use std::mem::size_of;

use dtn_trace::{NodeId, SimTime};
use mbt_core::{ColdNodeState, Query};

/// Sentinel in the dense index for "no residue entry".
const NONE: u32 = u32::MAX;

/// Estimated heap bytes per pooled distinct query beyond its text: the
/// `QueryInner` allocation, its token vector, and the pool's own slot.
const POOL_QUERY_OVERHEAD: usize = 64;

/// Per-slot sizes of the packed representations.
const QUERY_SLOT: usize = size_of::<(Query, Option<SimTime>)>();
const CREDIT_SLOT: usize = size_of::<(NodeId, f64)>();

/// Fixed estimated cost of one node's entry: the boxed-slice headers, the
/// dense id, and the index slot.
const ENTRY_OVERHEAD: usize = size_of::<ResidueEntry>() + size_of::<NodeId>() + size_of::<u32>();

fn entry_footprint(queries: usize, credits: usize) -> u64 {
    (ENTRY_OVERHEAD + queries * QUERY_SLOT + credits * CREDIT_SLOT) as u64
}

/// One dormant node's packed residue.
#[derive(Debug, Default)]
struct ResidueEntry {
    /// Buffered `(query, expiry)` pairs in insertion order (replay order is
    /// observable — see the module docs).
    queries: Box<[(Query, Option<SimTime>)]>,
    /// The spilled credit ledger, `(peer, credit)` ascending by peer.
    credits: Box<[(NodeId, f64)]>,
}

/// Residue of every dormant node, packed and interned — see the module
/// docs. Drop-in behavioural replacement for the arena's former
/// `BTreeMap<NodeId, ColdNodeState>`.
#[derive(Debug, Default)]
pub struct ResidueStore {
    /// Node index → dense slot, or [`NONE`]. Grows on demand so the store
    /// works for ids beyond the initial space.
    slot_of: Vec<u32>,
    /// Dense node ids, parallel to `entries`; swap-remove order, never
    /// meaningful.
    ids: Vec<NodeId>,
    entries: Vec<ResidueEntry>,
    /// Intern pool: one pooled [`Query`] per distinct text, with the number
    /// of packed slots referencing it. Probed by key only — never iterated
    /// — so hash order cannot leak into behaviour.
    pool: HashMap<Query, u64>,
    pool_bytes: u64,
    entry_bytes: u64,
    peak_nodes: u64,
    peak_bytes: u64,
}

impl ResidueStore {
    /// Creates an empty store sized for `id_space` addressable node ids.
    pub fn new(id_space: usize) -> Self {
        ResidueStore {
            slot_of: vec![NONE; id_space],
            ..ResidueStore::default()
        }
    }

    /// Number of nodes currently holding residue.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no node holds residue.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// High-water number of nodes holding residue at once.
    pub fn peak_nodes(&self) -> u64 {
        self.peak_nodes
    }

    /// High-water estimated bytes (packed entries plus intern pool).
    /// Deterministic: computed from element counts and type sizes, never
    /// from allocator state.
    pub fn peak_bytes_est(&self) -> u64 {
        self.peak_bytes
    }

    /// Current estimated bytes held.
    pub fn bytes_est(&self) -> u64 {
        self.entry_bytes + self.pool_bytes
    }

    /// Buffers one query for a dormant node, interning its text.
    pub fn add_query(&mut self, id: NodeId, query: Query, expires: Option<SimTime>) {
        let query = self.intern(query);
        let slot = self.slot(id);
        let entry = &mut self.entries[slot];
        self.entry_bytes -= entry_footprint(entry.queries.len(), entry.credits.len());
        let mut queries = std::mem::take(&mut entry.queries).into_vec();
        queries.push((query, expires));
        entry.queries = queries.into_boxed_slice();
        self.entry_bytes += entry_footprint(entry.queries.len(), entry.credits.len());
        self.note_peaks();
    }

    /// Folds an evicted node's cold state in: queries append (preserving
    /// order), the credit ledger replaces what was buffered — exactly the
    /// eviction semantics of the map this store supersedes.
    pub fn absorb(&mut self, id: NodeId, residue: ColdNodeState) {
        let interned: Vec<(Query, Option<SimTime>)> = residue
            .queries
            .into_iter()
            .map(|(query, expires)| (self.intern(query), expires))
            .collect();
        let slot = self.slot(id);
        let entry = &mut self.entries[slot];
        self.entry_bytes -= entry_footprint(entry.queries.len(), entry.credits.len());
        let mut queries = std::mem::take(&mut entry.queries).into_vec();
        queries.extend(interned);
        entry.queries = queries.into_boxed_slice();
        entry.credits = residue.credits.into_boxed_slice();
        self.entry_bytes += entry_footprint(entry.queries.len(), entry.credits.len());
        self.note_peaks();
    }

    /// Removes and returns a node's residue for materialization: queries in
    /// insertion order, credits as stored. `None` if the node holds none.
    pub fn take(&mut self, id: NodeId) -> Option<ColdNodeState> {
        let slot = match self.slot_of.get(id.index()) {
            Some(&slot) if slot != NONE => slot as usize,
            _ => return None,
        };
        self.slot_of[id.index()] = NONE;
        self.ids.swap_remove(slot);
        let entry = self.entries.swap_remove(slot);
        if let Some(&moved) = self.ids.get(slot) {
            self.slot_of[moved.index()] = slot as u32;
        }
        self.entry_bytes -= entry_footprint(entry.queries.len(), entry.credits.len());
        let queries = entry.queries.into_vec();
        for (query, _) in &queries {
            self.release(query);
        }
        Some(ColdNodeState {
            queries,
            credits: entry.credits.into_vec(),
        })
    }

    /// Day-boundary decay: drops queries expired by `now` (the same
    /// `now >= expiry` rule node stores prune by) and nodes left with no
    /// queries and no credits. Implemented as a compacting rebuild — the
    /// index, packed entries and intern pool are reconstructed from the
    /// survivors, so memory returns to the post-decay floor.
    pub fn prune(&mut self, now: SimTime) {
        let old_ids = std::mem::take(&mut self.ids);
        let old_entries = std::mem::take(&mut self.entries);
        for slot in self.slot_of.iter_mut() {
            *slot = NONE;
        }
        self.pool.clear();
        self.pool_bytes = 0;
        self.entry_bytes = 0;
        for (id, entry) in old_ids.into_iter().zip(old_entries) {
            let credits = entry.credits;
            let survivors: Vec<(Query, Option<SimTime>)> = entry
                .queries
                .into_vec()
                .into_iter()
                .filter(|(_, expires)| !expires.is_some_and(|e| now >= e))
                .collect();
            if survivors.is_empty() && credits.is_empty() {
                continue;
            }
            let interned: Vec<(Query, Option<SimTime>)> = survivors
                .into_iter()
                .map(|(query, expires)| (self.intern(query), expires))
                .collect();
            let slot = self.slot(id);
            let entry = &mut self.entries[slot];
            self.entry_bytes -= entry_footprint(entry.queries.len(), entry.credits.len());
            entry.queries = interned.into_boxed_slice();
            entry.credits = credits;
            self.entry_bytes += entry_footprint(entry.queries.len(), entry.credits.len());
        }
        // Pruning only shrinks; peaks are deliberately left untouched.
    }

    /// Dense slot for `id`, creating an empty entry on first touch.
    fn slot(&mut self, id: NodeId) -> usize {
        let idx = id.index();
        if idx >= self.slot_of.len() {
            self.slot_of.resize(idx + 1, NONE);
        }
        let slot = self.slot_of[idx];
        if slot != NONE {
            return slot as usize;
        }
        let slot = self.ids.len();
        self.slot_of[idx] = slot as u32;
        self.ids.push(id);
        self.entries.push(ResidueEntry::default());
        self.entry_bytes += entry_footprint(0, 0);
        slot
    }

    /// Returns the pooled handle for `query`'s text, bumping its refcount
    /// (content-based equality makes the substitution invisible).
    fn intern(&mut self, query: Query) -> Query {
        if let Some((pooled, _)) = self.pool.get_key_value(&query) {
            let pooled = pooled.clone();
            *self.pool.get_mut(&pooled).expect("just found") += 1;
            return pooled;
        }
        self.pool_bytes += (POOL_QUERY_OVERHEAD + query.text().len()) as u64;
        self.pool.insert(query.clone(), 1);
        query
    }

    /// Drops one reference to a pooled query, evicting the pool entry when
    /// the last packed slot referencing it is gone.
    fn release(&mut self, query: &Query) {
        if let Some(count) = self.pool.get_mut(query) {
            *count -= 1;
            if *count == 0 {
                self.pool_bytes -= (POOL_QUERY_OVERHEAD + query.text().len()) as u64;
                self.pool.remove(query);
            }
        }
    }

    fn note_peaks(&mut self) {
        self.peak_nodes = self.peak_nodes.max(self.ids.len() as u64);
        self.peak_bytes = self.peak_bytes.max(self.bytes_est());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn q(text: &str) -> Query {
        Query::new(text).unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn n(id: u32) -> NodeId {
        NodeId::new(id)
    }

    /// The representation this store replaced, driven by the same calls —
    /// the behavioural oracle.
    #[derive(Default)]
    struct MapStore(BTreeMap<NodeId, ColdNodeState>);

    impl MapStore {
        fn add_query(&mut self, id: NodeId, query: Query, expires: Option<SimTime>) {
            self.0.entry(id).or_default().queries.push((query, expires));
        }

        fn absorb(&mut self, id: NodeId, residue: ColdNodeState) {
            let entry = self.0.entry(id).or_default();
            entry.queries.extend(residue.queries);
            entry.credits = residue.credits;
        }

        fn take(&mut self, id: NodeId) -> Option<ColdNodeState> {
            self.0.remove(&id)
        }

        fn prune(&mut self, now: SimTime) {
            self.0.retain(|_, residue| {
                residue
                    .queries
                    .retain(|(_, expires)| !expires.is_some_and(|e| now >= e));
                !residue.queries.is_empty() || !residue.credits.is_empty()
            });
        }
    }

    #[test]
    fn take_returns_queries_in_insertion_order() {
        let mut store = ResidueStore::new(8);
        store.add_query(n(3), q("beta"), None);
        store.add_query(n(3), q("alpha"), Some(t(100)));
        store.add_query(n(3), q("beta"), Some(t(50)));
        let residue = store.take(n(3)).unwrap();
        let texts: Vec<&str> = residue.queries.iter().map(|(q, _)| q.text()).collect();
        assert_eq!(
            texts,
            ["beta", "alpha", "beta"],
            "order and duplicates preserved"
        );
        assert_eq!(residue.queries[1].1, Some(t(100)));
        assert!(store.take(n(3)).is_none(), "take drains");
        assert!(store.is_empty());
    }

    #[test]
    fn interning_shares_one_handle_across_nodes() {
        let mut store = ResidueStore::new(1024);
        let baseline = {
            let mut probe = ResidueStore::new(1024);
            probe.add_query(n(0), q("the same query text"), None);
            probe.bytes_est()
        };
        for id in 0..1024u32 {
            store.add_query(n(id), q("the same query text"), None);
        }
        // 1024 nodes share one pooled string: total bytes grow by packed
        // slots only, far below 1024 independent copies.
        let per_extra_node = (store.bytes_est() - baseline) / 1023;
        assert_eq!(
            per_extra_node,
            entry_footprint(1, 0),
            "no per-node text copies"
        );
        assert_eq!(store.pool.len(), 1);
        // Every handle compares equal to a fresh copy of the text.
        let residue = store.take(n(512)).unwrap();
        assert_eq!(residue.queries[0].0, q("the same query text"));
    }

    #[test]
    fn pool_shrinks_as_residue_drains() {
        let mut store = ResidueStore::new(4);
        store.add_query(n(0), q("shared"), None);
        store.add_query(n(1), q("shared"), None);
        store.add_query(n(1), q("solo"), None);
        assert_eq!(store.pool.len(), 2);
        store.take(n(1));
        assert_eq!(
            store.pool.len(),
            1,
            "solo released, shared still held by n0"
        );
        store.take(n(0));
        assert_eq!(store.pool.len(), 0);
        assert_eq!(store.bytes_est(), 0);
    }

    #[test]
    fn prune_rebuilds_and_releases_expired_text() {
        let mut store = ResidueStore::new(8);
        store.add_query(n(0), q("keep"), Some(t(100)));
        store.add_query(n(0), q("drop"), Some(t(10)));
        store.add_query(n(1), q("drop"), Some(t(10)));
        store.absorb(
            n(2),
            ColdNodeState {
                queries: vec![],
                credits: vec![(n(9), 1.5)],
            },
        );
        store.prune(t(10));
        assert_eq!(store.len(), 2, "n1 emptied out; n0 and creditor n2 stay");
        assert_eq!(store.pool.len(), 1, "`drop`'s pooled text is gone");
        let kept = store.take(n(0)).unwrap();
        assert_eq!(kept.queries.len(), 1);
        assert_eq!(kept.queries[0].0.text(), "keep");
        let creditor = store.take(n(2)).unwrap();
        assert_eq!(creditor.credits, vec![(n(9), 1.5)]);
    }

    #[test]
    fn absorb_appends_queries_and_replaces_credits() {
        let mut store = ResidueStore::new(4);
        store.add_query(n(0), q("buffered"), None);
        store.absorb(
            n(0),
            ColdNodeState {
                queries: vec![(q("evicted"), Some(t(5)))],
                credits: vec![(n(1), 2.0)],
            },
        );
        let residue = store.take(n(0)).unwrap();
        let texts: Vec<&str> = residue.queries.iter().map(|(q, _)| q.text()).collect();
        assert_eq!(texts, ["buffered", "evicted"]);
        assert_eq!(residue.credits, vec![(n(1), 2.0)]);
    }

    #[test]
    fn ids_beyond_the_initial_space_work() {
        let mut store = ResidueStore::new(2);
        store.add_query(n(1000), q("far"), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.take(n(1000)).unwrap().queries.len(), 1);
    }

    #[test]
    fn peaks_are_high_water_marks() {
        let mut store = ResidueStore::new(8);
        store.add_query(n(0), q("a"), None);
        store.add_query(n(1), q("b"), None);
        let peak_bytes = store.bytes_est();
        store.take(n(0));
        store.take(n(1));
        assert_eq!(store.peak_nodes(), 2);
        assert_eq!(store.peak_bytes_est(), peak_bytes);
        assert_eq!(store.bytes_est(), 0);
    }

    #[test]
    fn randomized_operations_match_the_btreemap_oracle() {
        // Deterministic pseudo-random op sequence (no external RNG):
        // a simple LCG drives add/absorb/take/prune over a small id space
        // and a small query alphabet, comparing `take`-visible state after
        // every step.
        let mut lcg: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let alphabet = ["alpha", "beta", "gamma", "delta"];
        let mut store = ResidueStore::new(8);
        let mut oracle = MapStore::default();
        for step in 0..600 {
            let id = n((next() % 8) as u32);
            match next() % 10 {
                0..=4 => {
                    let text = alphabet[(next() % 4) as usize];
                    let expires = match next() % 3 {
                        0 => None,
                        _ => Some(t(next() % 50)),
                    };
                    store.add_query(id, q(text), expires);
                    oracle.add_query(id, q(text), expires);
                }
                5..=6 => {
                    let queries = (0..next() % 3)
                        .map(|_| (q(alphabet[(next() % 4) as usize]), Some(t(next() % 50))))
                        .collect::<Vec<_>>();
                    let credits = (0..next() % 2)
                        .map(|_| (n((next() % 8) as u32), (next() % 5) as f64))
                        .collect::<Vec<_>>();
                    let residue = ColdNodeState { queries, credits };
                    store.absorb(id, residue.clone());
                    oracle.absorb(id, residue);
                }
                7..=8 => {
                    assert_eq!(store.take(id), oracle.take(id), "take diverged at {step}");
                }
                _ => {
                    let now = t(next() % 50);
                    store.prune(now);
                    oracle.prune(now);
                }
            }
            assert_eq!(store.len(), oracle.0.len(), "len diverged at {step}");
        }
        // Drain both and compare everything left.
        for id in 0..8u32 {
            assert_eq!(store.take(n(id)), oracle.take(n(id)));
        }
    }
}
