//! End-to-end simulation runner.
//!
//! Wires a contact trace, the workload of §VI-A, and a population of
//! [`MbtNode`]s into the discrete-event engine, and measures the metadata and
//! file delivery ratios among the non-Internet-access nodes — the paper's
//! performance metric.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use dtn_sim::engine::{SimCtx, SimHandler, StreamSimulator};
use dtn_sim::metrics::DeliveryStats;
use dtn_sim::rng::stream;
use dtn_sim::telemetry::{Phase, PhaseTimes, Telemetry};
use dtn_sim::FaultPlan;
use dtn_trace::{
    Contact, FrequentScan, NodeId, SimDuration, SimTime, StreamStats, TraceSource, SECONDS_PER_DAY,
};
use mbt_core::auth::KeyRegistry;
use mbt_core::transport::{BusTransport, SimTransport};
use mbt_core::{
    MbtConfig, MbtNode, MetadataServer, NodeEvent, ProtocolSpec, Query, TransportKind, Uri,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::residue::ResidueStore;
use crate::workload::{self, WorkloadConfig};

/// Parameters of one simulation run. A passive configuration struct — all
/// fields public.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Which protocol variant every node runs.
    pub protocol: ProtocolSpec,
    /// Node configuration (per-contact budgets, cooperation mode, …).
    pub config: MbtConfig,
    /// Fraction of nodes with Internet access, in `[0, 1]`.
    pub internet_fraction: f64,
    /// New files generated per day.
    pub files_per_day: u32,
    /// File time-to-live in days.
    pub ttl_days: u64,
    /// Simulated days.
    pub days: u64,
    /// Master seed (drives Internet-node selection and the workload).
    pub seed: u64,
    /// Window for frequent-contact detection (3 days for DieselNet, 1 day
    /// for NUS — paper §VI-A).
    pub frequent_window: SimDuration,
    /// Failure injection: fraction of non-Internet nodes that die (stop
    /// participating in contacts and generating queries) at a uniformly
    /// random instant within the horizon. Default 0.
    pub churn: f64,
    /// Structured fault injection (frame loss, contact truncation, temporary
    /// down intervals, piece corruption). A non-noop plan is installed into
    /// every node's [`MbtConfig`] (replacing any plan already set there) and
    /// its churn component gates contact participation, query generation and
    /// Internet sessions. Default [`FaultPlan::none`], which changes nothing
    /// — a zero-rate plan is byte-identical to the fault-free path.
    pub faults: FaultPlan,
    /// Adversary: fraction of non-Internet nodes that are *polluters*,
    /// planting forged fake-publisher metadata (and junk files) that match
    /// real queries (the §I "fake files" threat). Polluters are excluded
    /// from measurement. Default 0.
    pub polluter_fraction: f64,
    /// How many of each day's files every polluter forges. Default 0.
    pub fakes_per_day: u32,
    /// Whether honest nodes install the publisher key registry and reject
    /// metadata failing authentication (§III-B item f). Default false.
    pub verify_metadata: bool,
    /// Which transport backend carries contact-phase messages. The default
    /// [`TransportKind::Sim`] moves messages in-process; [`TransportKind::Bus`]
    /// round-trips every message through its serialized wire frame (and is
    /// pinned byte-identical to `Sim` by `tests/transport_equivalence.rs`).
    pub transport: TransportKind,
    /// Shard prefetch depth for the simulation pass: how many shards the
    /// trace source may decode ahead of the one being consumed
    /// ([`TraceSource::stream_prefetch`]). `0` (the default) streams
    /// serially. The contact sequence — and therefore the [`SimResult`] —
    /// is byte-identical at any depth (`tests/prefetch_equivalence.rs`);
    /// only decode timing and the residency telemetry change.
    pub prefetch: usize,
}

impl SimParams {
    /// A builder seeded with the defaults — the one construction path for
    /// run parameters. Prefer this over positional construction or bare
    /// struct literals in new code: it owns the protocol, fault, prefetch
    /// and transport knobs by name, so call sites stay readable as fields
    /// accrete.
    ///
    /// ```
    /// use mbt_experiments::runner::SimParams;
    /// use mbt_core::ProtocolSpec;
    ///
    /// let params = SimParams::builder()
    ///     .protocol(ProtocolSpec::POP_CACHE)
    ///     .days(7)
    ///     .seed(5)
    ///     .build();
    /// assert_eq!(params.protocol.name(), "PopCache");
    /// ```
    pub fn builder() -> SimParamsBuilder {
        SimParamsBuilder {
            params: SimParams::default(),
        }
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            protocol: ProtocolSpec::MBT,
            config: MbtConfig::new(),
            internet_fraction: 0.3,
            files_per_day: 40,
            ttl_days: 3,
            days: 14,
            seed: 0,
            frequent_window: SimDuration::from_days(1),
            churn: 0.0,
            faults: FaultPlan::none(),
            polluter_fraction: 0.0,
            fakes_per_day: 0,
            verify_metadata: false,
            transport: TransportKind::default(),
            prefetch: 0,
        }
    }
}

/// Chained constructor for [`SimParams`]; obtained from
/// [`SimParams::builder`], finished with [`SimParamsBuilder::build`]. Every
/// setter mirrors the field of the same name.
#[derive(Debug, Clone, Default)]
pub struct SimParamsBuilder {
    params: SimParams,
}

impl SimParamsBuilder {
    /// Sets the protocol variant every node runs. Accepts a
    /// [`ProtocolSpec`] or a legacy [`mbt_core::ProtocolKind`].
    pub fn protocol(mut self, protocol: impl Into<ProtocolSpec>) -> Self {
        self.params.protocol = protocol.into();
        self
    }

    /// Sets the node configuration (per-contact budgets, cooperation, …).
    pub fn config(mut self, config: MbtConfig) -> Self {
        self.params.config = config;
        self
    }

    /// Sets the fraction of nodes with Internet access, in `[0, 1]`.
    pub fn internet_fraction(mut self, fraction: f64) -> Self {
        self.params.internet_fraction = fraction;
        self
    }

    /// Sets the number of new files generated per day.
    pub fn files_per_day(mut self, files: u32) -> Self {
        self.params.files_per_day = files;
        self
    }

    /// Sets the file time-to-live in days.
    pub fn ttl_days(mut self, days: u64) -> Self {
        self.params.ttl_days = days;
        self
    }

    /// Sets the simulated horizon in days.
    pub fn days(mut self, days: u64) -> Self {
        self.params.days = days;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Sets the frequent-contact detection window.
    pub fn frequent_window(mut self, window: SimDuration) -> Self {
        self.params.frequent_window = window;
        self
    }

    /// Sets the fraction of measured nodes that die mid-run.
    pub fn churn(mut self, churn: f64) -> Self {
        self.params.churn = churn;
        self
    }

    /// Sets the structured fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.params.faults = faults;
        self
    }

    /// Sets the polluter fraction (adversarial metadata forgers).
    pub fn polluter_fraction(mut self, fraction: f64) -> Self {
        self.params.polluter_fraction = fraction;
        self
    }

    /// Sets how many of each day's files every polluter forges.
    pub fn fakes_per_day(mut self, fakes: u32) -> Self {
        self.params.fakes_per_day = fakes;
        self
    }

    /// Sets whether honest nodes authenticate publisher metadata.
    pub fn verify_metadata(mut self, verify: bool) -> Self {
        self.params.verify_metadata = verify;
        self
    }

    /// Sets the transport backend carrying contact-phase messages.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.params.transport = transport;
        self
    }

    /// Sets the shard prefetch depth for the simulation pass.
    pub fn prefetch(mut self, depth: usize) -> Self {
        self.params.prefetch = depth;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SimParams {
        self.params
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Queries generated by measured (non-Internet-access) nodes.
    pub queries: u64,
    /// Metadata deliveries to measured nodes.
    pub metadata_delivered: u64,
    /// Complete-file deliveries to measured nodes.
    pub files_delivered: u64,
    /// Delivered metadata ÷ queries.
    pub metadata_ratio: f64,
    /// Delivered files ÷ queries.
    pub file_ratio: f64,
    /// Contacts processed.
    pub contacts: u64,
    /// Metadata broadcasts transmitted.
    pub metadata_broadcasts: u64,
    /// File broadcasts transmitted.
    pub file_broadcasts: u64,
    /// Queries stored for frequent contacts during contacts.
    pub queries_distributed: u64,
    /// Receptions dropped by injected frame loss (0 without a fault plan).
    pub frames_lost: u64,
    /// File receptions discarded by checksum verification after injected
    /// piece corruption (0 without a fault plan).
    pub corrupt_receptions: u64,
    /// Mean metadata delivery delay in hours (query → metadata arrival).
    pub mean_metadata_delay_hours: Option<f64>,
    /// Mean file delivery delay in hours (query → complete file).
    pub mean_file_delay_hours: Option<f64>,
    /// Metadata deliveries per simulated day (index = day).
    pub daily_metadata_delivered: Vec<u64>,
    /// File deliveries per simulated day (index = day).
    pub daily_files_delivered: Vec<u64>,
}

impl SimResult {
    /// Merges another run's results into this one, pooling counts: ratios
    /// are recomputed from the pooled numerators and denominators, delay
    /// means are combined weighted by their delivery counts, and the daily
    /// series are added element-wise (padding the shorter). Merging a
    /// `SimResult::default()` in either direction is an identity, and the
    /// pooled counts make the operation commutative and associative.
    pub fn merge(&mut self, other: &SimResult) {
        self.mean_metadata_delay_hours = merge_weighted_mean(
            self.mean_metadata_delay_hours,
            self.metadata_delivered,
            other.mean_metadata_delay_hours,
            other.metadata_delivered,
        );
        self.mean_file_delay_hours = merge_weighted_mean(
            self.mean_file_delay_hours,
            self.files_delivered,
            other.mean_file_delay_hours,
            other.files_delivered,
        );
        self.queries += other.queries;
        self.metadata_delivered += other.metadata_delivered;
        self.files_delivered += other.files_delivered;
        self.contacts += other.contacts;
        self.metadata_broadcasts += other.metadata_broadcasts;
        self.file_broadcasts += other.file_broadcasts;
        self.queries_distributed += other.queries_distributed;
        self.frames_lost += other.frames_lost;
        self.corrupt_receptions += other.corrupt_receptions;
        self.metadata_ratio = pooled_ratio(self.metadata_delivered, self.queries);
        self.file_ratio = pooled_ratio(self.files_delivered, self.queries);
        add_daily(
            &mut self.daily_metadata_delivered,
            &other.daily_metadata_delivered,
        );
        add_daily(
            &mut self.daily_files_delivered,
            &other.daily_files_delivered,
        );
    }
}

fn pooled_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn merge_weighted_mean(a: Option<f64>, wa: u64, b: Option<f64>, wb: u64) -> Option<f64> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) => Some(x),
        (None, Some(y)) => Some(y),
        (Some(x), Some(y)) => {
            let (wa, wb) = (wa.max(1) as f64, wb.max(1) as f64);
            Some((x * wa + y * wb) / (wa + wb))
        }
    }
}

fn add_daily(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (slot, &v) in into.iter_mut().zip(from) {
        *slot += v;
    }
}

/// Runs one simulation over `source` with `params`.
///
/// `source` is any [`TraceSource`] — an in-memory
/// [`dtn_trace::ContactTrace`] or an on-disk [`dtn_trace::ShardedTrace`].
/// Peak memory is bounded by the source's streaming granularity (a single
/// shard for sharded traces, times `1 + prefetch` when pipelined), not the
/// trace size. Sources that carry precomputed pair aggregates (sharded
/// traces written with sidecars) answer the pre-simulation statistics from
/// their manifest via [`TraceSource::frequent_map`], so the contacts are
/// decoded exactly once — for the event loop; sources without aggregates
/// fall back to a separate streaming statistics pass first.
///
/// `telemetry` is an optional observability sink. `None` skips every
/// telemetry branch so the plain path pays nothing for the feature. `Some`
/// collects always-on counters (contacts, hello exchanges, clique
/// formations, frames, metadata/piece transfers, bytes moved, shard loads,
/// peak resident contacts) and wall-clock spans for the trace-load,
/// contact-processing, discovery and download phases. The [`SimResult`] is
/// byte-identical either way — telemetry is observational only and never
/// feeds back into the simulation. Counters are a pure function of the
/// deterministic event stream; only the phase timings vary run to run.
///
/// Deterministic: the same contacts and params produce the same result,
/// whatever the backing store.
pub fn run_simulation(
    source: &dyn TraceSource,
    params: &SimParams,
    mut telemetry: Option<&mut Telemetry>,
) -> SimResult {
    let node_ids = source.nodes();
    let id_space = source.id_space();

    // Pick Internet-access nodes deterministically.
    let mut shuffled = node_ids.clone();
    let mut pick_rng: StdRng = stream(params.seed, "internet-selection");
    shuffled.shuffle(&mut pick_rng);
    let internet_count = ((node_ids.len() as f64) * params.internet_fraction).round() as usize;
    let internet: BTreeSet<NodeId> = shuffled.into_iter().take(internet_count).collect();

    // Install a non-noop fault plan into every node's config so contacts
    // see the same loss/truncation/corruption rolls; a noop plan leaves the
    // caller's config untouched (byte-identical to the fault-free path).
    let node_config = if params.faults.is_noop() {
        params.config.clone()
    } else {
        params.config.clone().faults(params.faults)
    };

    // Frequent contacts come from trace statistics (§VI-A). Sources with
    // precomputed pair aggregates (sharded traces with sidecars) derive the
    // map straight from their manifest — no contact decoding at all;
    // otherwise a streaming windowed scan makes the one extra pass. Either
    // way the map is byte-identical (pinned by the dtn-trace unit suite).
    let started = Instant::now();
    let freq_map = match source.frequent_map(params.frequent_window) {
        Some(map) => map,
        None => {
            let mut contacts = source.stream();
            let mut scan = FrequentScan::new(params.frequent_window);
            for contact in &mut *contacts {
                scan.observe(&contact);
            }
            absorb_stream_stats(telemetry.as_deref_mut(), contacts.stream_stats());
            scan.finish()
        }
    };
    if let Some(tel) = telemetry.as_deref_mut() {
        tel.phases.add(Phase::TraceLoad, started.elapsed());
    }

    // Polluters: adversarial devices among the non-Internet nodes; they
    // plant forged metadata and are excluded from measurement.
    let mut polluters: BTreeSet<NodeId> = BTreeSet::new();
    if params.polluter_fraction > 0.0 && params.fakes_per_day > 0 {
        let mut candidates: Vec<NodeId> = node_ids
            .iter()
            .copied()
            .filter(|n| !internet.contains(n))
            .collect();
        let mut pol_rng: StdRng = stream(params.seed, "polluters");
        candidates.shuffle(&mut pol_rng);
        let count = ((candidates.len() as f64) * params.polluter_fraction).round() as usize;
        polluters = candidates.into_iter().take(count).collect();
    }

    // Nodes materialize lazily: the arena holds everything needed to build
    // one on first touch (honest nodes install the publisher registry when
    // verification is on) and evicts nodes whose state decays back to
    // nothing, so peak memory tracks the *active* population.
    let registry = params.verify_metadata.then(workload::publisher_registry);
    let arena = NodeArena::new(
        params.protocol,
        node_config,
        id_space,
        internet.clone(),
        polluters.clone(),
        registry,
        freq_map,
    );

    let measured: Vec<NodeId> = node_ids
        .iter()
        .copied()
        .filter(|n| !internet.contains(n) && !polluters.contains(n))
        .collect();

    // Failure injection: a churn fraction of measured nodes dies at a
    // uniform random time within the horizon.
    let horizon_secs = params.days * SECONDS_PER_DAY;
    let mut dead_after: BTreeMap<NodeId, SimTime> = BTreeMap::new();
    if params.churn > 0.0 {
        let mut churn_rng: StdRng = stream(params.seed, "churn");
        let mut candidates: Vec<NodeId> = measured.clone();
        candidates.shuffle(&mut churn_rng);
        let victims = ((candidates.len() as f64) * params.churn).round() as usize;
        for id in candidates.into_iter().take(victims) {
            let at = rand::Rng::gen_range(&mut churn_rng, 0..horizon_secs.max(1));
            dead_after.insert(id, SimTime::from_secs(at));
        }
    }

    // Fault-plan churn: temporary per-node down intervals (any node,
    // including Internet ones, can power off). Intervals are a pure function
    // of (plan seed, node), so they cost nothing to precompute here.
    let mut down: BTreeMap<NodeId, (SimTime, SimTime)> = BTreeMap::new();
    if params.faults.churn > 0.0 {
        let horizon = SimDuration::from_secs(horizon_secs);
        for &id in &node_ids {
            if let Some(interval) = params.faults.down_interval(id, horizon) {
                down.insert(id, interval);
            }
        }
    }

    let mut harness = Harness {
        arena,
        server: MetadataServer::new(internet.len().max(1) as u32),
        stats: DeliveryStats::new(measured),
        wanted: BTreeMap::new(),
        delivered_meta: BTreeSet::new(),
        delivered_file: BTreeSet::new(),
        meta_delay: DelaySum::default(),
        file_delay: DelaySum::default(),
        daily_meta: vec![0; params.days as usize],
        daily_file: vec![0; params.days as usize],
        workload: WorkloadConfig::new(params.files_per_day, params.ttl_days),
        workload_rng: stream(params.seed, "workload"),
        internet: internet.clone(),
        present: node_ids.iter().copied().collect(),
        dead_after,
        down,
        polluters,
        fakes_per_day: params.fakes_per_day,
        result: SimResult::default(),
        telemetry: telemetry.as_deref_mut(),
        transport: params.transport,
        bus: BusTransport::new(),
    };

    // The simulation pass: the event loop itself, optionally pipelined so
    // the next shard decodes while this one is being consumed.
    let horizon = SimTime::from_secs(params.days * SECONDS_PER_DAY);
    let mut contacts = if params.prefetch > 0 {
        source.stream_prefetch(params.prefetch)
    } else {
        source.stream()
    };
    let mut sim = StreamSimulator::new(&mut *contacts).horizon(horizon);
    for day in 0..params.days {
        sim = sim.schedule(workload::publish_time(day), day);
    }
    sim.run(&mut harness);

    let mut result = harness.result.clone();
    result.queries = harness.stats.queries();
    result.metadata_delivered = harness.stats.metadata_delivered();
    result.files_delivered = harness.stats.files_delivered();
    result.metadata_ratio = harness.stats.metadata_delivery_ratio();
    result.file_ratio = harness.stats.file_delivery_ratio();
    result.mean_metadata_delay_hours = harness.meta_delay.mean_hours();
    result.mean_file_delay_hours = harness.file_delay.mean_hours();
    result.daily_metadata_delivered = harness.daily_meta.clone();
    result.daily_files_delivered = harness.daily_file.clone();
    let (instantiated, peak_resident) = (harness.arena.instantiated, harness.arena.peak_resident);
    let (peak_residue_nodes, residue_bytes) = (
        harness.arena.pending.peak_nodes(),
        harness.arena.pending.peak_bytes_est(),
    );
    drop(harness);
    if let Some(tel) = telemetry.as_deref_mut() {
        tel.counters.nodes_instantiated += instantiated;
        tel.counters.peak_resident_nodes = tel.counters.peak_resident_nodes.max(peak_resident);
        tel.counters.peak_residue_nodes = tel.counters.peak_residue_nodes.max(peak_residue_nodes);
        tel.counters.residue_bytes_est = tel.counters.residue_bytes_est.max(residue_bytes);
    }
    absorb_stream_stats(telemetry, contacts.stream_stats());
    result
}

/// Sentinel in [`NodeArena::slot_of`] for a node with no materialized state.
const DORMANT: u32 = u32::MAX;

/// Lazily materialized node population — the city-scale memory seam.
///
/// A node begins *dormant*: no [`MbtNode`] exists for it, and queries
/// addressed to it are buffered as `(query, expiry)` pairs. The first event
/// that can give the node observable state — a contact, an Internet
/// session, adversarial seeding — materializes it into the dense `nodes`
/// arena, replaying the buffered queries. At every daily tick, resident
/// nodes whose state has decayed back to nothing (everything expired,
/// nothing collected) are evicted back to dormancy via
/// [`MbtNode::extract_cold_state`], which proves the round-trip is
/// behaviourally identical to keeping the node resident: construction draws
/// no randomness and both contacts and Internet sessions prune before
/// acting. Peak resident count therefore tracks the nodes that actually
/// hold state, not the id space.
struct NodeArena {
    protocol: ProtocolSpec,
    config: MbtConfig,
    internet: BTreeSet<NodeId>,
    polluters: BTreeSet<NodeId>,
    /// Publisher registry installed into honest nodes on materialization
    /// (`Some` only when the run verifies metadata).
    registry: Option<KeyRegistry>,
    freq_map: BTreeMap<NodeId, Vec<NodeId>>,
    /// Node index → arena slot, or [`DORMANT`].
    slot_of: Vec<u32>,
    /// The resident nodes, dense; order is materialization order with
    /// swap-remove holes, never meaningful.
    nodes: Vec<MbtNode>,
    /// Compact residue of dormant nodes — buffered `(query, expiry)` pairs
    /// (replayed in order on materialization) plus spilled credit ledgers,
    /// packed and text-interned (see [`ResidueStore`]).
    pending: ResidueStore,
    /// Total materializations (telemetry: `nodes_instantiated`).
    instantiated: u64,
    /// High-water resident count (telemetry: `peak_resident_nodes`).
    peak_resident: u64,
}

impl NodeArena {
    fn new(
        protocol: ProtocolSpec,
        config: MbtConfig,
        id_space: usize,
        internet: BTreeSet<NodeId>,
        polluters: BTreeSet<NodeId>,
        registry: Option<KeyRegistry>,
        freq_map: BTreeMap<NodeId, Vec<NodeId>>,
    ) -> Self {
        NodeArena {
            protocol,
            config,
            internet,
            polluters,
            registry,
            freq_map,
            slot_of: vec![DORMANT; id_space],
            nodes: Vec::new(),
            pending: ResidueStore::new(id_space),
            instantiated: 0,
            peak_resident: 0,
        }
    }

    /// Number of addressable node ids.
    fn id_space(&self) -> usize {
        self.slot_of.len()
    }

    /// The resident node for `id`, if materialized.
    fn get(&self, id: NodeId) -> Option<&MbtNode> {
        match self.slot_of.get(id.index()) {
            Some(&slot) if slot != DORMANT => Some(&self.nodes[slot as usize]),
            _ => None,
        }
    }

    /// The resident node for `id`, if materialized.
    fn get_mut(&mut self, id: NodeId) -> Option<&mut MbtNode> {
        match self.slot_of.get(id.index()) {
            Some(&slot) if slot != DORMANT => Some(&mut self.nodes[slot as usize]),
            _ => None,
        }
    }

    /// Ensures `id` is resident and returns its arena slot.
    fn materialize(&mut self, id: NodeId) -> usize {
        let idx = id.index();
        let slot = self.slot_of[idx];
        if slot != DORMANT {
            return slot as usize;
        }
        let mut node = MbtNode::new(id, self.protocol, self.config.clone());
        node.set_internet_access(self.internet.contains(&id));
        if let Some(freq) = self.freq_map.get(&id) {
            node.set_frequent_contacts(freq.iter().copied());
        }
        if let Some(registry) = &self.registry {
            if !self.polluters.contains(&id) {
                node.set_key_registry(registry.clone());
            }
        }
        if let Some(residue) = self.pending.take(id) {
            for (query, expires) in residue.queries {
                node.add_query(query, expires);
            }
            if !residue.credits.is_empty() {
                node.restore_credits(residue.credits);
            }
        }
        let slot = self.nodes.len();
        self.slot_of[idx] = slot as u32;
        self.nodes.push(node);
        self.instantiated += 1;
        self.peak_resident = self.peak_resident.max(self.nodes.len() as u64);
        slot
    }

    /// Records a query for `id` without materializing it: buffered if
    /// dormant, added directly if resident.
    fn add_query(&mut self, id: NodeId, query: Query, expires: Option<SimTime>) {
        match self.get_mut(id) {
            Some(node) => {
                node.add_query(query, expires);
            }
            None => self.pending.add_query(id, query, expires),
        }
    }

    /// Daily decay: prunes every resident node and evicts the cold ones
    /// (their remaining own queries go back to the pending buffer).
    /// Internet-access nodes stay resident — the next tick's session would
    /// re-materialize them immediately anyway.
    fn evict_cold(&mut self, now: SimTime) {
        let mut slot = 0;
        while slot < self.nodes.len() {
            self.nodes[slot].prune(now);
            let id = self.nodes[slot].id();
            if self.internet.contains(&id) {
                slot += 1;
                continue;
            }
            match self.nodes[slot].extract_cold_state() {
                Some(residue) => {
                    if !residue.queries.is_empty() || !residue.credits.is_empty() {
                        self.pending.absorb(id, residue);
                    }
                    self.slot_of[id.index()] = DORMANT;
                    self.nodes.swap_remove(slot);
                    if let Some(moved) = self.nodes.get(slot) {
                        self.slot_of[moved.id().index()] = slot as u32;
                    }
                }
                None => slot += 1,
            }
        }
    }

    /// Drops expired buffered queries — the same `now >= expiry` rule node
    /// stores prune by, applied before any of them could be observed.
    /// Residues holding credit history stay (credits never decay). The
    /// store compacts itself in the process.
    fn prune_pending(&mut self, now: SimTime) {
        self.pending.prune(now);
    }
}

/// Folds a contact stream's shard-load and residency facts into the
/// telemetry counters: loads accumulate, peak residency merges by maximum
/// (so it stays independent of how many passes or cells contributed).
fn absorb_stream_stats(telemetry: Option<&mut Telemetry>, stats: StreamStats) {
    if let Some(tel) = telemetry {
        tel.counters.shards_loaded += stats.shards_loaded;
        tel.counters.shards_prefetched += stats.shards_prefetched;
        tel.counters.peak_resident_contacts = tel
            .counters
            .peak_resident_contacts
            .max(stats.peak_resident_contacts);
    }
}

/// Streaming delay accumulator: only the mean is ever reported, so keeping
/// the integer second sum and the sample count is bit-identical to keeping
/// every sample while staying O(1) at any delivery volume.
#[derive(Default)]
struct DelaySum {
    total_secs: u64,
    count: u64,
}

impl DelaySum {
    fn push_secs(&mut self, secs: u64) {
        self.total_secs += secs;
        self.count += 1;
    }

    fn mean_hours(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.total_secs as f64 / self.count as f64 / 3_600.0)
    }
}

struct Harness<'a> {
    arena: NodeArena,
    server: MetadataServer,
    stats: DeliveryStats,
    /// (node, uri) → (expiry, query time); present while the node wants it.
    wanted: BTreeMap<(NodeId, Uri), (Option<SimTime>, SimTime)>,
    delivered_meta: BTreeSet<(NodeId, Uri)>,
    delivered_file: BTreeSet<(NodeId, Uri)>,
    meta_delay: DelaySum,
    file_delay: DelaySum,
    daily_meta: Vec<u64>,
    daily_file: Vec<u64>,
    workload: WorkloadConfig,
    workload_rng: StdRng,
    internet: BTreeSet<NodeId>,
    /// Nodes that actually appear in the trace (others never meet anyone).
    present: BTreeSet<NodeId>,
    /// Failure injection: instants after which a node no longer participates.
    dead_after: BTreeMap<NodeId, SimTime>,
    /// Fault-plan churn: per-node `[start, end)` down intervals during which
    /// the node neither meets anyone nor queries nor syncs.
    down: BTreeMap<NodeId, (SimTime, SimTime)>,
    /// Adversarial nodes planting forged metadata.
    polluters: BTreeSet<NodeId>,
    /// Forgeries planted per polluter per day.
    fakes_per_day: u32,
    result: SimResult,
    /// Observability sink; `None` skips all telemetry work so the plain
    /// [`run_simulation`] path pays nothing for the feature.
    telemetry: Option<&'a mut Telemetry>,
    /// Which transport backend carries contact-phase messages.
    transport: TransportKind,
    /// The bus backend, persistent across contacts so its frame counters
    /// accumulate over the run (unused under [`TransportKind::Sim`]).
    bus: BusTransport,
}

impl Harness<'_> {
    fn is_alive(&self, node: NodeId, now: SimTime) -> bool {
        self.dead_after.get(&node).is_none_or(|&at| now < at)
            && self
                .down
                .get(&node)
                .is_none_or(|&(start, end)| now < start || now >= end)
    }

    fn record_meta(&mut self, node: NodeId, uri: &Uri, now: SimTime) {
        let key = (node, uri.clone());
        let Some(&(expires, asked_at)) = self.wanted.get(&key) else {
            return;
        };
        if expires.is_some_and(|e| now >= e) {
            return;
        }
        if self.delivered_meta.insert(key) {
            self.stats.record_metadata_delivery(node, now);
            self.meta_delay.push_secs(
                now.checked_duration_since(asked_at)
                    .map_or(0, |d| d.as_secs()),
            );
            if let Some(slot) = self.daily_meta.get_mut(now.day() as usize) {
                *slot += 1;
            }
        }
    }

    fn record_file(&mut self, node: NodeId, uri: &Uri, now: SimTime) {
        let key = (node, uri.clone());
        let Some(&(expires, asked_at)) = self.wanted.get(&key) else {
            return;
        };
        if expires.is_some_and(|e| now >= e) {
            return;
        }
        if self.delivered_file.insert(key) {
            self.stats.record_file_delivery(node, now);
            self.file_delay.push_secs(
                now.checked_duration_since(asked_at)
                    .map_or(0, |d| d.as_secs()),
            );
            if let Some(slot) = self.daily_file.get_mut(now.day() as usize) {
                *slot += 1;
            }
        }
    }

    /// Drains events from the resident node at arena slot `idx`.
    fn drain_node_events(&mut self, idx: usize, now: SimTime) {
        let id = self.arena.nodes[idx].id();
        for event in self.arena.nodes[idx].drain_events() {
            match event {
                NodeEvent::MetadataStored { uri, .. } => self.record_meta(id, &uri, now),
                NodeEvent::FileCompleted { uri, .. } => self.record_file(id, &uri, now),
            }
        }
    }
}

impl SimHandler for Harness<'_> {
    fn on_scheduled(&mut self, ctx: &mut SimCtx<'_>, day: u64) {
        let now = ctx.now();
        // Day boundary: decay the arena before today's workload. Eviction
        // is observationally a no-op (see [`NodeArena`]); it only keeps the
        // resident population tracking the nodes that hold state.
        self.arena.evict_cold(now);
        self.arena.prune_pending(now);
        self.server.expire(now);
        // Expired queries can never be satisfied again (`record_meta`/
        // `record_file` early-return on them), so their accounting entries
        // — and the delivery dedup keys that pointed at them — are dead
        // weight; dropping them keeps the books bounded by *live* queries.
        self.wanted
            .retain(|_, &mut (expires, _)| expires.is_none_or(|e| now < e));
        let wanted = &self.wanted;
        self.delivered_meta.retain(|key| wanted.contains_key(key));
        self.delivered_file.retain(|key| wanted.contains_key(key));

        // Publish today's files.
        let batch = workload::generate_batch(&self.workload, day, &mut self.workload_rng);
        for f in &batch.files {
            self.server.publish(f.metadata.clone(), f.popularity);
        }

        // Every present, alive node draws its queries for the new files.
        // (The RNG is advanced for dead nodes too, so churn does not perturb
        // the workload of survivors.)
        let expires = Some(batch.at + self.workload.ttl());
        let ids: Vec<NodeId> = self.present.iter().copied().collect();
        for id in ids {
            let picks = workload::draw_queries(&batch, id, &mut self.workload_rng);
            if !self.is_alive(id, now) {
                continue;
            }
            for (file_idx, query) in picks {
                let uri = batch.files[file_idx].uri.clone();
                // Dormant nodes just buffer the query — materializing here
                // would pull the whole population resident on day one.
                self.arena.add_query(id, query, expires);
                if self.stats.measures(id) {
                    self.stats.record_query(id, now);
                    self.wanted.insert((id, uri.clone()), (expires, now));
                    // Pushed metadata / files may already satisfy the query
                    // (a dormant node holds neither).
                    if self.arena.get(id).is_some_and(|n| n.has_metadata(&uri)) {
                        self.record_meta(id, &uri, now);
                    }
                    if self.arena.get(id).is_some_and(|n| n.has_file(&uri)) {
                        self.record_file(id, &uri, now);
                    }
                }
            }
        }

        // Polluters plant forged advertisements (and junk files) for the
        // most popular of today's releases.
        if self.fakes_per_day > 0 && !self.polluters.is_empty() {
            let mut targets: Vec<usize> = (0..batch.files.len()).collect();
            targets.sort_by(|&a, &b| {
                mbt_core::popularity::cmp_popularity(
                    batch.files[b].popularity,
                    batch.files[a].popularity,
                )
            });
            let polluters: Vec<NodeId> = self.polluters.iter().copied().collect();
            for id in polluters {
                if !self.is_alive(id, now) {
                    continue;
                }
                let slot = self.arena.materialize(id);
                for (v, &t) in targets.iter().take(self.fakes_per_day as usize).enumerate() {
                    let fake = workload::forge_fake(&batch.files[t], id.raw() * 101 + v as u32);
                    self.arena.nodes[slot].seed_content(fake.metadata, fake.popularity, true);
                }
                // Ignore the seeding events; fakes never count as deliveries.
                let _ = self.arena.nodes[slot].drain_events();
            }
        }

        // Internet-access nodes synchronize with the server (unless down).
        let internet: Vec<NodeId> = self.internet.iter().copied().collect();
        for id in internet {
            if id.index() < self.arena.id_space() && self.is_alive(id, now) {
                let slot = self.arena.materialize(id);
                self.arena.nodes[slot].internet_session(&mut self.server, now);
                self.drain_node_events(slot, now);
            }
        }
    }

    fn on_contact_start(&mut self, ctx: &mut SimCtx<'_>, contact: &Contact) {
        let now = ctx.now();
        let alive: Vec<NodeId> = contact
            .participants()
            .iter()
            .copied()
            .filter(|n| self.is_alive(*n, now))
            .collect();
        if alive.len() < 2 {
            return;
        }
        // Arena slots in participant order: the contact loop only indexes
        // the slice with them, so slot values are interchangeable with the
        // id-ordered indices the eager population used.
        let members: Vec<usize> = alive.iter().map(|&id| self.arena.materialize(id)).collect();
        let started = self.telemetry.is_some().then(Instant::now);
        let mut inner = PhaseTimes::default();
        let duration = contact.duration();
        let report = match self.transport {
            TransportKind::Sim => mbt_core::node::run_contact_via(
                &mut SimTransport::new(),
                &mut self.arena.nodes,
                &members,
                now,
                duration,
                &mut inner,
            ),
            TransportKind::Bus => mbt_core::node::run_contact_via(
                &mut self.bus,
                &mut self.arena.nodes,
                &members,
                now,
                duration,
                &mut inner,
            ),
        };
        if let Some(tel) = self.telemetry.as_deref_mut() {
            if let Some(started) = started {
                tel.phases.add(Phase::ContactProcessing, started.elapsed());
            }
            tel.phases.merge(&inner);
            let c = &mut tel.counters;
            c.contacts += 1;
            c.hello_exchanges += report.hello_exchanges as u64;
            c.clique_formations += u64::from(members.len() >= 3);
            c.frames_sent += report.frames_sent() as u64;
            c.frames_lost += report.frames_lost as u64;
            c.metadata_transferred += report.metadata_received as u64;
            c.pieces_transferred += report.pieces_received as u64;
            c.bytes_moved += report.bytes_moved;
            c.corrupt_receptions += report.corrupt_receptions as u64;
            c.wanted_cache_hits += report.wanted_cache_hits as u64;
            c.index_lookups += report.index_lookups as u64;
        }
        self.result.contacts += 1;
        self.result.metadata_broadcasts += report.metadata_broadcasts as u64;
        self.result.file_broadcasts += report.file_broadcasts as u64;
        self.result.queries_distributed += report.queries_distributed as u64;
        self.result.frames_lost += report.frames_lost as u64;
        self.result.corrupt_receptions += report.corrupt_receptions as u64;
        for idx in members {
            self.drain_node_events(idx, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;
    use dtn_trace::ContactTrace;
    use mbt_core::ProtocolKind;

    fn small_trace() -> ContactTrace {
        NusConfig::new(30, 7).seed(11).generate()
    }

    fn params(protocol: impl Into<ProtocolSpec>) -> SimParams {
        SimParams::builder()
            .protocol(protocol)
            .files_per_day(10)
            .days(7)
            .internet_fraction(0.3)
            .seed(5)
            .build()
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = small_trace();
        let a = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        let b = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        assert_eq!(a, b);
    }

    #[test]
    fn queries_are_generated_and_some_delivered() {
        let trace = small_trace();
        let r = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        assert!(r.queries > 0, "no queries generated");
        assert!(r.contacts > 0, "no contacts processed");
        assert!(r.metadata_delivered > 0, "nothing discovered");
        assert!(r.files_delivered > 0, "nothing downloaded");
        assert!(
            r.metadata_ratio >= r.file_ratio,
            "files need metadata first"
        );
    }

    #[test]
    fn every_builtin_variant_runs_end_to_end() {
        let trace = small_trace();
        for spec in ProtocolSpec::builtin() {
            let r = run_simulation(&trace, &params(spec), None);
            assert!(r.queries > 0, "{spec}: no queries generated");
            assert!(r.metadata_delivered > 0, "{spec}: nothing discovered");
        }
    }

    #[test]
    fn legacy_kind_params_match_triad_specs() {
        let trace = small_trace();
        for (kind, spec) in ProtocolKind::ALL.into_iter().zip(ProtocolSpec::TRIAD) {
            let by_kind = run_simulation(&trace, &params(kind), None);
            let by_spec = run_simulation(&trace, &params(spec), None);
            assert_eq!(by_kind, by_spec, "{spec}: spec diverged from kind");
        }
    }

    #[test]
    fn mbtqm_sends_no_standalone_metadata() {
        let trace = small_trace();
        let r = run_simulation(&trace, &params(ProtocolKind::MbtQm), None);
        assert_eq!(r.metadata_broadcasts, 0);
        assert_eq!(r.queries_distributed, 0);
    }

    #[test]
    fn mbtq_distributes_no_queries() {
        let trace = small_trace();
        let r = run_simulation(&trace, &params(ProtocolKind::MbtQ), None);
        assert_eq!(r.queries_distributed, 0);
        assert!(r.metadata_broadcasts > 0);
    }

    #[test]
    fn zero_internet_fraction_delivers_nothing() {
        let trace = small_trace();
        let mut p = params(ProtocolKind::Mbt);
        p.internet_fraction = 0.0;
        let r = run_simulation(&trace, &p, None);
        assert_eq!(r.files_delivered, 0, "no source of files at all");
    }

    #[test]
    fn full_internet_fraction_measures_nobody() {
        let trace = small_trace();
        let mut p = params(ProtocolKind::Mbt);
        p.internet_fraction = 1.0;
        let r = run_simulation(&trace, &p, None);
        assert_eq!(r.queries, 0, "every node is an unmeasured Internet node");
    }

    #[test]
    fn daily_series_sum_to_totals() {
        let trace = small_trace();
        let r = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        assert_eq!(r.daily_metadata_delivered.len(), 7);
        assert_eq!(
            r.daily_metadata_delivered.iter().sum::<u64>(),
            r.metadata_delivered
        );
        assert_eq!(
            r.daily_files_delivered.iter().sum::<u64>(),
            r.files_delivered
        );
    }

    #[test]
    fn delays_reported_when_deliveries_happen() {
        let trace = small_trace();
        let r = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        assert!(r.metadata_delivered == 0 || r.mean_metadata_delay_hours.is_some());
        if let Some(d) = r.mean_file_delay_hours {
            assert!(d >= 0.0);
        }
    }

    #[test]
    fn noop_fault_plan_is_byte_identical_to_no_plan() {
        let trace = small_trace();
        let clean = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        let mut p = params(ProtocolKind::Mbt);
        p.faults = FaultPlan::none().seed(123); // seed alone must change nothing
        let seeded = run_simulation(&trace, &p, None);
        assert_eq!(clean, seeded);
        assert_eq!(clean.frames_lost, 0);
        assert_eq!(clean.corrupt_receptions, 0);
    }

    #[test]
    fn total_loss_plan_delivers_nothing_to_measured_nodes() {
        let trace = small_trace();
        let mut p = params(ProtocolKind::Mbt);
        p.faults = FaultPlan::none().loss(1.0);
        let r = run_simulation(&trace, &p, None);
        assert!(r.queries > 0);
        assert_eq!(r.metadata_delivered, 0, "peers are the only metadata path");
        assert_eq!(r.files_delivered, 0, "peers are the only file path");
        assert!(r.frames_lost > 0, "losses should be counted");
    }

    #[test]
    fn corruption_discards_receptions_and_is_recoverable() {
        let trace = small_trace();
        let clean = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        let mut p = params(ProtocolKind::Mbt);
        p.faults = FaultPlan::none().corruption(0.5).seed(7);
        let r = run_simulation(&trace, &p, None);
        assert!(r.corrupt_receptions > 0, "corruption should trigger");
        assert!(r.files_delivered > 0, "re-fetching still completes files");
        assert!(
            r.files_delivered <= clean.files_delivered,
            "corruption must not create deliveries"
        );
    }

    #[test]
    fn plan_churn_reduces_contact_participation() {
        // Pairwise trace: one down participant cancels the whole contact.
        let trace = dtn_trace::generators::DieselNetConfig::new(16, 7)
            .seed(11)
            .generate();
        let clean = run_simulation(&trace, &params(ProtocolKind::Mbt), None);
        let mut p = params(ProtocolKind::Mbt);
        p.faults = FaultPlan::none().churn(1.0).seed(3);
        let churned = run_simulation(&trace, &p, None);
        assert!(
            churned.contacts < clean.contacts,
            "every node down for a while must cancel some contacts ({} vs {})",
            churned.contacts,
            clean.contacts
        );
    }

    #[test]
    fn more_internet_nodes_deliver_more() {
        let trace = small_trace();
        let mut lo = params(ProtocolKind::Mbt);
        lo.internet_fraction = 0.1;
        let mut hi = params(ProtocolKind::Mbt);
        hi.internet_fraction = 0.7;
        let r_lo = run_simulation(&trace, &lo, None);
        let r_hi = run_simulation(&trace, &hi, None);
        assert!(
            r_hi.file_ratio >= r_lo.file_ratio,
            "hi {} < lo {}",
            r_hi.file_ratio,
            r_lo.file_ratio
        );
    }
}
