//! Regenerates Figure 2 (a)–(e): the UMassDieselNet-style evaluation.
//!
//! Usage: `cargo run -p mbt-experiments --bin fig2 --release [-- --quick]`

use mbt_experiments::figures::all_fig2;
use mbt_experiments::report::{figure_csv, figure_table};
use mbt_experiments::{scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    println!("Reproducing Figure 2 (DieselNet-style trace), scale {scale:?}\n");
    for fig in all_fig2(scale) {
        print!("{}", figure_table(&fig));
        if let Some(path) = write_csv(&fig.id, &figure_csv(&fig)) {
            println!("  -> {}", path.display());
        }
        println!();
    }
}
