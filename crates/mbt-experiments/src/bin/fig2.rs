//! Regenerates Figure 2 (a)–(e): the UMassDieselNet-style evaluation.
//!
//! Usage: `cargo run -p mbt-experiments --bin fig2 --release -- \
//!   [--quick] [--jobs N] [--replicates R]`
//!
//! `--jobs N` sets the worker thread count (0 = one per core) and
//! `--replicates R` runs R independently-seeded replicates per sweep cell,
//! populating the stddev columns of the CSV output.

use mbt_experiments::figures::{all_fig2, RunContext};
use mbt_experiments::report::{figure_csv, figure_table};
use mbt_experiments::{exec_from_args, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    let exec = exec_from_args();
    println!("Reproducing Figure 2 (DieselNet-style trace), scale {scale:?}\n");
    let mut ctx = RunContext::new(scale).exec(exec);
    for fig in all_fig2(&mut ctx) {
        print!("{}", figure_table(&fig));
        if let Some(path) = write_csv(&fig.id, &figure_csv(&fig)) {
            println!("  -> {}", path.display());
        }
        println!();
    }
}
