//! Regenerates the §V capacity analysis: per-node transmission capacity of
//! broadcast (`(n-1)/n`, increasing in density) vs pair-wise (`1/n`,
//! decreasing), analytically and by slot-level simulation.
//!
//! Usage: `cargo run -p mbt-experiments --bin capacity --release`

use mbt_experiments::capacity::{capacity_table, crossover_holds};
use mbt_experiments::report::capacity_table_text;

fn main() {
    println!("Per-node transmission capacity vs clique size (paper §V)\n");
    let rows = capacity_table(20, 10_000);
    print!("{}", capacity_table_text(&rows));
    println!(
        "\ncrossover statement (broadcast ≥ pair-wise, equal only at n=2): {}",
        if crossover_holds(&rows) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
