//! Runs every experiment in the repository: Figures 2 and 3, the capacity
//! analysis, and the ablations. This is the harness behind `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p mbt-experiments --bin all_experiments --release -- \
//!   [--quick] [--jobs N] [--replicates R]`
//!
//! `--jobs N` sets the worker thread count (0 = one per core) and
//! `--replicates R` runs R independently-seeded replicates per sweep cell,
//! populating the stddev columns of the CSV output.

use mbt_experiments::ablations::{
    ablation_table, cooperation_ablation_with, discovery_first_ablation_with,
    failure_ablation_with, ordering_ablation_with, pollution_ablation_with,
    short_contact_ablation_with,
};
use mbt_experiments::capacity::{capacity_table, crossover_holds};
use mbt_experiments::figures::{all_fig2, all_fig3, RunContext};
use mbt_experiments::mobility::{mobility_comparison, mobility_table};
use mbt_experiments::progress::{delivery_progress_with, progress_table};
use mbt_experiments::report::{capacity_table_text, figure_csv, figure_table};
use mbt_experiments::routing::{
    bound_table, dissemination_bound, routing_comparison, routing_table,
};
use mbt_experiments::{exec_from_args, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    let exec = exec_from_args();
    println!("=== MBT reproduction: all experiments (scale {scale:?}) ===\n");

    let mut ctx = RunContext::new(scale).exec(exec);
    for fig in all_fig2(&mut ctx).into_iter().chain(all_fig3(&mut ctx)) {
        print!("{}", figure_table(&fig));
        if let Some(path) = write_csv(&fig.id, &figure_csv(&fig)) {
            println!("  -> {}", path.display());
        }
        println!();
    }

    println!("== capacity analysis (§V) ==");
    let rows = capacity_table(20, 10_000);
    print!("{}", capacity_table_text(&rows));
    println!(
        "crossover statement: {}\n",
        if crossover_holds(&rows) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    println!(
        "{}",
        ablation_table(
            "cooperation mode (§IV-B/§V-B)",
            &cooperation_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "discovery-first contact ordering (§V)",
            &discovery_first_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "short-contact file-phase gating (§V)",
            &short_contact_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "broadcast ordering: two-phase (§V-A) vs rarest-first (BitTorrent)",
            &ordering_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "failure injection: broadcast loss and node churn",
            &failure_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "metadata pollution: fake publishers vs authentication (\u{a7}I, \u{a7}III-B.f)",
            &pollution_ablation_with(scale, &exec)
        )
    );

    println!("== routing baselines (§II-A substrate) ==");
    print!("{}", routing_table(&routing_comparison(scale)));
    println!("\n== metadata dissemination: MBT vs space-time oracle bound ==");
    print!("{}", bound_table(&dissemination_bound(scale)));
    println!("\n== protocols across mobility models (extension) ==");
    print!("{}", mobility_table(&mobility_comparison(scale)));
    println!("\n== cumulative delivery progression, NUS trace (extension) ==");
    print!("{}", progress_table(&delivery_progress_with(scale, &exec)));
}
