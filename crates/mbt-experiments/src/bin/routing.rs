//! Runs the routing-baseline experiments: classical store-carry-forward
//! protocols on both traces, and the space-time oracle bound for metadata
//! dissemination vs what MBT achieves.
//!
//! Usage: `cargo run -p mbt-experiments --bin routing --release [-- --quick]`

use mbt_experiments::routing::{
    bound_table, dissemination_bound, routing_comparison, routing_table,
};
use mbt_experiments::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Routing baselines (paper §II-A substrate), scale {scale:?}\n");
    println!("== unicast routing comparison ==");
    print!("{}", routing_table(&routing_comparison(scale)));
    println!("\n== metadata dissemination: MBT vs space-time oracle bound ==");
    print!("{}", bound_table(&dissemination_bound(scale)));
}
