//! Runs the design-choice ablations listed in `DESIGN.md`.
//!
//! Usage: `cargo run -p mbt-experiments --bin ablations --release -- \
//!   [--quick] [--jobs N]`

use mbt_experiments::ablations::{
    ablation_table, cooperation_ablation_with, discovery_first_ablation_with,
    failure_ablation_with, ordering_ablation_with, pollution_ablation_with,
    short_contact_ablation_with,
};
use mbt_experiments::{exec_from_args, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let exec = exec_from_args();
    println!("Design ablations (NUS-style trace), scale {scale:?}\n");
    println!(
        "{}",
        ablation_table(
            "cooperation mode (§IV-B/§V-B)",
            &cooperation_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "discovery-first contact ordering (§V)",
            &discovery_first_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "short-contact file-phase gating (§V)",
            &short_contact_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "broadcast ordering: two-phase (§V-A) vs rarest-first (BitTorrent)",
            &ordering_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "failure injection: broadcast loss and node churn",
            &failure_ablation_with(scale, &exec)
        )
    );
    println!(
        "{}",
        ablation_table(
            "metadata pollution: fake publishers vs authentication (\u{a7}I, \u{a7}III-B.f)",
            &pollution_ablation_with(scale, &exec)
        )
    );
}
