//! The experiment registry: one function per figure of the paper's
//! evaluation (§VI-B).
//!
//! Figure 2 (a)–(e) sweep five parameters on the DieselNet-style pair-wise
//! bus trace; Figure 3 (a)–(f) sweeps the same five plus attendance rate on
//! the NUS-style classroom clique trace. Each function returns a
//! [`Figure`] holding one series per protocol (MBT, MBT-Q, MBT-QM).

use dtn_sim::telemetry::Telemetry;
use dtn_sim::FaultPlan;
use dtn_trace::generators::{DieselNetConfig, NusConfig};
use dtn_trace::{ContactTrace, SimDuration};
use mbt_core::MbtConfig;

use crate::exec::{ExecConfig, ParallelRunner};
use crate::runner::SimParams;
use crate::sweep::Figure;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small population / short horizon — for tests and benches.
    Quick,
    /// The full scale used for `EXPERIMENTS.md`.
    #[default]
    Full,
}

impl Scale {
    fn days(self) -> u64 {
        match self {
            Scale::Quick => 6,
            Scale::Full => 15,
        }
    }

    fn buses(self) -> u32 {
        match self {
            Scale::Quick => 16,
            Scale::Full => 40,
        }
    }

    fn students(self) -> u32 {
        match self {
            Scale::Quick => 30,
            Scale::Full => 80,
        }
    }

    fn xs(self, full: &[f64], quick: &[f64]) -> Vec<f64> {
        match self {
            Scale::Quick => quick.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }
}

const SEED: u64 = 42;

fn dieselnet_trace(scale: Scale) -> ContactTrace {
    DieselNetConfig::new(scale.buses(), scale.days())
        .seed(SEED)
        .generate()
}

fn nus_trace(scale: Scale) -> ContactTrace {
    nus_trace_with_attendance(scale, 0.8)
}

fn nus_trace_with_attendance(scale: Scale, attendance: f64) -> ContactTrace {
    NusConfig::new(scale.students(), scale.days())
        .seed(SEED)
        .attendance_rate(attendance)
        .generate()
}

fn base_params(scale: Scale, frequent_days: u64) -> SimParams {
    SimParams {
        days: scale.days(),
        seed: SEED,
        frequent_window: SimDuration::from_days(frequent_days),
        ..SimParams::default()
    }
}

fn dieselnet_params(scale: Scale) -> SimParams {
    base_params(scale, 3)
}

fn nus_params(scale: Scale) -> SimParams {
    base_params(scale, 1)
}

// ----- Figure 2: UMassDieselNet-style trace -----

/// Fig 2(a): delivery ratios vs percentage of Internet-access nodes.
pub fn fig2a(scale: Scale) -> Figure {
    fig2a_with(scale, &ExecConfig::default())
}

/// [`fig2a`] with explicit execution (jobs/replicates/master seed).
pub fn fig2a_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = dieselnet_trace(scale);
    let xs = scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]);
    runner.sweep_shared_trace(
        "fig2a",
        "DieselNet: delivery ratio vs % Internet-access nodes",
        "internet-access fraction",
        &xs,
        &trace,
        |x| SimParams {
            internet_fraction: x,
            ..dieselnet_params(scale)
        },
    )
}

/// [`fig2a`] with telemetry: same figure byte-for-byte, plus the merged
/// counters and phase spans of the whole sweep. The bench harness runs this.
pub fn fig2a_observed(scale: Scale, exec: &ExecConfig) -> (Figure, Telemetry) {
    let runner = ParallelRunner::new(*exec);
    let trace = dieselnet_trace(scale);
    let xs = scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]);
    runner.sweep_shared_trace_observed(
        "fig2a",
        "DieselNet: delivery ratio vs % Internet-access nodes",
        "internet-access fraction",
        &xs,
        &trace,
        |x| SimParams {
            internet_fraction: x,
            ..dieselnet_params(scale)
        },
    )
}

/// Fig 2(b): delivery ratios vs number of new files per day.
pub fn fig2b(scale: Scale) -> Figure {
    fig2b_with(scale, &ExecConfig::default())
}

/// [`fig2b`] with explicit execution (jobs/replicates/master seed).
pub fn fig2b_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = dieselnet_trace(scale);
    let xs = scale.xs(&[10.0, 25.0, 50.0, 75.0, 100.0], &[10.0, 50.0]);
    runner.sweep_shared_trace(
        "fig2b",
        "DieselNet: delivery ratio vs new files per day",
        "new files per day",
        &xs,
        &trace,
        |x| SimParams {
            files_per_day: x as u32,
            ..dieselnet_params(scale)
        },
    )
}

/// Fig 2(c): delivery ratios vs file time-to-live.
pub fn fig2c(scale: Scale) -> Figure {
    fig2c_with(scale, &ExecConfig::default())
}

/// [`fig2c`] with explicit execution (jobs/replicates/master seed).
pub fn fig2c_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = dieselnet_trace(scale);
    let xs = scale.xs(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 5.0]);
    runner.sweep_shared_trace(
        "fig2c",
        "DieselNet: delivery ratio vs TTL of file (days)",
        "TTL (days)",
        &xs,
        &trace,
        |x| SimParams {
            ttl_days: x as u64,
            ..dieselnet_params(scale)
        },
    )
}

/// Fig 2(d): delivery ratios vs metadata exchanged per contact. Captures the
/// paper's exception: at very small metadata budgets, MBT-QM's file ratio and
/// MBT-Q's metadata ratio can win because the few circulating metadata are
/// biased.
pub fn fig2d(scale: Scale) -> Figure {
    fig2d_with(scale, &ExecConfig::default())
}

/// [`fig2d`] with explicit execution (jobs/replicates/master seed).
pub fn fig2d_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = dieselnet_trace(scale);
    let xs = scale.xs(&[1.0, 5.0, 10.0, 20.0, 40.0], &[1.0, 20.0]);
    runner.sweep_shared_trace(
        "fig2d",
        "DieselNet: delivery ratio vs metadata per contact",
        "metadata per contact",
        &xs,
        &trace,
        |x| SimParams {
            config: MbtConfig::new().metadata_per_contact(x as u32),
            ..dieselnet_params(scale)
        },
    )
}

/// Fig 2(e): delivery ratios vs files exchanged per contact.
pub fn fig2e(scale: Scale) -> Figure {
    fig2e_with(scale, &ExecConfig::default())
}

/// [`fig2e`] with explicit execution (jobs/replicates/master seed).
pub fn fig2e_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = dieselnet_trace(scale);
    let xs = scale.xs(&[1.0, 2.0, 4.0, 6.0, 10.0], &[1.0, 4.0]);
    runner.sweep_shared_trace(
        "fig2e",
        "DieselNet: delivery ratio vs files per contact",
        "files per contact",
        &xs,
        &trace,
        |x| SimParams {
            config: MbtConfig::new().files_per_contact(x as u32),
            ..dieselnet_params(scale)
        },
    )
}

// ----- Figure 3: NUS-style student trace -----

/// Fig 3(a): delivery ratios vs percentage of Internet-access nodes. The
/// paper highlights that MBT/MBT-Q file ratios rise quickly while MBT-QM
/// stays flat (it has no file discovery process).
pub fn fig3a(scale: Scale) -> Figure {
    fig3a_with(scale, &ExecConfig::default())
}

/// [`fig3a`] with explicit execution (jobs/replicates/master seed).
pub fn fig3a_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    let xs = scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]);
    runner.sweep_shared_trace(
        "fig3a",
        "NUS: delivery ratio vs % Internet-access nodes",
        "internet-access fraction",
        &xs,
        &trace,
        |x| SimParams {
            internet_fraction: x,
            ..nus_params(scale)
        },
    )
}

/// [`fig3a`] with telemetry: same figure byte-for-byte, plus the merged
/// counters and phase spans of the whole sweep. The bench harness runs this.
pub fn fig3a_observed(scale: Scale, exec: &ExecConfig) -> (Figure, Telemetry) {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    let xs = scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]);
    runner.sweep_shared_trace_observed(
        "fig3a",
        "NUS: delivery ratio vs % Internet-access nodes",
        "internet-access fraction",
        &xs,
        &trace,
        |x| SimParams {
            internet_fraction: x,
            ..nus_params(scale)
        },
    )
}

/// Fig 3(b): delivery ratios vs number of new files per day.
pub fn fig3b(scale: Scale) -> Figure {
    fig3b_with(scale, &ExecConfig::default())
}

/// [`fig3b`] with explicit execution (jobs/replicates/master seed).
pub fn fig3b_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    let xs = scale.xs(&[10.0, 25.0, 50.0, 75.0, 100.0], &[10.0, 50.0]);
    runner.sweep_shared_trace(
        "fig3b",
        "NUS: delivery ratio vs new files per day",
        "new files per day",
        &xs,
        &trace,
        |x| SimParams {
            files_per_day: x as u32,
            ..nus_params(scale)
        },
    )
}

/// Fig 3(c): delivery ratios vs file time-to-live.
pub fn fig3c(scale: Scale) -> Figure {
    fig3c_with(scale, &ExecConfig::default())
}

/// [`fig3c`] with explicit execution (jobs/replicates/master seed).
pub fn fig3c_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    let xs = scale.xs(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 5.0]);
    runner.sweep_shared_trace(
        "fig3c",
        "NUS: delivery ratio vs TTL of file (days)",
        "TTL (days)",
        &xs,
        &trace,
        |x| SimParams {
            ttl_days: x as u64,
            ..nus_params(scale)
        },
    )
}

/// Fig 3(d): delivery ratios vs metadata exchanged per contact.
pub fn fig3d(scale: Scale) -> Figure {
    fig3d_with(scale, &ExecConfig::default())
}

/// [`fig3d`] with explicit execution (jobs/replicates/master seed).
pub fn fig3d_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    let xs = scale.xs(&[1.0, 5.0, 10.0, 20.0, 40.0], &[1.0, 20.0]);
    runner.sweep_shared_trace(
        "fig3d",
        "NUS: delivery ratio vs metadata per contact",
        "metadata per contact",
        &xs,
        &trace,
        |x| SimParams {
            config: MbtConfig::new().metadata_per_contact(x as u32),
            ..nus_params(scale)
        },
    )
}

/// Fig 3(e): delivery ratios vs files exchanged per contact.
pub fn fig3e(scale: Scale) -> Figure {
    fig3e_with(scale, &ExecConfig::default())
}

/// [`fig3e`] with explicit execution (jobs/replicates/master seed).
pub fn fig3e_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    let xs = scale.xs(&[1.0, 2.0, 4.0, 6.0, 10.0], &[1.0, 4.0]);
    runner.sweep_shared_trace(
        "fig3e",
        "NUS: delivery ratio vs files per contact",
        "files per contact",
        &xs,
        &trace,
        |x| SimParams {
            config: MbtConfig::new().files_per_contact(x as u32),
            ..nus_params(scale)
        },
    )
}

/// Fig 3(f): delivery ratios vs attendance rate — the probability an
/// enrolled student actually attends a class session. Mobility itself changes
/// with x, so each x regenerates the trace.
pub fn fig3f(scale: Scale) -> Figure {
    fig3f_with(scale, &ExecConfig::default())
}

/// [`fig3f`] with explicit execution (jobs/replicates/master seed).
pub fn fig3f_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let xs = scale.xs(&[0.5, 0.6, 0.7, 0.8, 0.9, 1.0], &[0.5, 1.0]);
    runner.sweep(
        "fig3f",
        "NUS: delivery ratio vs attendance rate",
        "attendance rate",
        &xs,
        |x| (nus_trace_with_attendance(scale, x), nus_params(scale)),
    )
}

// ----- Fault injection -----

/// Robustness sweep (not in the paper): delivery ratios vs broadcast
/// frame-loss rate on the NUS trace, across all three protocol variants.
/// Loss 0 is the clean baseline — a noop plan, byte-identical to the
/// fault-free sweep; for lossy cells the executor derives the fault seed
/// from the cell's grid coordinates, so `--jobs N` runs stay bit-identical.
pub fn fault_sweep(scale: Scale) -> Figure {
    fault_sweep_with(scale, &ExecConfig::default())
}

/// [`fault_sweep`] with explicit execution (jobs/replicates/master seed).
pub fn fault_sweep_with(scale: Scale, exec: &ExecConfig) -> Figure {
    let xs = scale.xs(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], &[0.0, 0.25, 0.5]);
    fault_sweep_xs(scale, exec, &xs)
}

/// [`fault_sweep`] over caller-chosen loss rates (the determinism tests use
/// this to pin the loss=0 point against the fault-free path).
pub fn fault_sweep_xs(scale: Scale, exec: &ExecConfig, xs: &[f64]) -> Figure {
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    runner.sweep_shared_trace(
        "fault_sweep",
        "NUS: delivery ratio vs broadcast loss rate",
        "loss rate",
        xs,
        &trace,
        |x| SimParams {
            faults: FaultPlan::none().loss(x),
            ..nus_params(scale)
        },
    )
}

/// [`fault_sweep`] with telemetry: same figure byte-for-byte, plus the
/// merged counters and phase spans. The bench harness runs this to exercise
/// the fault-injection paths (frame loss shows up in the loss counters).
pub fn fault_sweep_observed(scale: Scale, exec: &ExecConfig) -> (Figure, Telemetry) {
    let xs = scale.xs(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], &[0.0, 0.25, 0.5]);
    let runner = ParallelRunner::new(*exec);
    let trace = nus_trace(scale);
    runner.sweep_shared_trace_observed(
        "fault_sweep",
        "NUS: delivery ratio vs broadcast loss rate",
        "loss rate",
        &xs,
        &trace,
        |x| SimParams {
            faults: FaultPlan::none().loss(x),
            ..nus_params(scale)
        },
    )
}

/// Every Figure-2 experiment in order.
pub fn all_fig2(scale: Scale) -> Vec<Figure> {
    all_fig2_with(scale, &ExecConfig::default())
}

/// [`all_fig2`] with explicit execution.
pub fn all_fig2_with(scale: Scale, exec: &ExecConfig) -> Vec<Figure> {
    vec![
        fig2a_with(scale, exec),
        fig2b_with(scale, exec),
        fig2c_with(scale, exec),
        fig2d_with(scale, exec),
        fig2e_with(scale, exec),
    ]
}

/// Every Figure-3 experiment in order.
pub fn all_fig3(scale: Scale) -> Vec<Figure> {
    all_fig3_with(scale, &ExecConfig::default())
}

/// [`all_fig3`] with explicit execution.
pub fn all_fig3_with(scale: Scale, exec: &ExecConfig) -> Vec<Figure> {
    vec![
        fig3a_with(scale, exec),
        fig3b_with(scale, exec),
        fig3c_with(scale, exec),
        fig3d_with(scale, exec),
        fig3e_with(scale, exec),
        fig3f_with(scale, exec),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_core::ProtocolKind;

    #[test]
    fn quick_fig2a_has_expected_shape() {
        let fig = fig2a(Scale::Quick);
        assert_eq!(fig.series.len(), 3);
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        assert_eq!(mbt.points.len(), 3);
        // Delivery grows with Internet access for the full protocol.
        assert!(
            mbt.points.last().unwrap().file_ratio >= mbt.points[0].file_ratio,
            "file ratio should not fall as internet access rises"
        );
    }

    #[test]
    fn quick_fig3a_mbtqm_flat_without_discovery() {
        let fig = fig3a(Scale::Quick);
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        let qm = fig.series_for(ProtocolKind::MbtQm).unwrap();
        // At high internet fraction MBT should clearly beat MBT-QM on files.
        let last = mbt.points.len() - 1;
        assert!(
            mbt.points[last].file_ratio >= qm.points[last].file_ratio,
            "MBT {} < MBT-QM {}",
            mbt.points[last].file_ratio,
            qm.points[last].file_ratio
        );
    }

    #[test]
    fn quick_fault_sweep_loses_delivery_at_high_loss() {
        let fig = fault_sweep(Scale::Quick);
        assert_eq!(fig.series.len(), 3);
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        assert_eq!(mbt.points[0].x, 0.0);
        let clean = mbt.points.first().unwrap();
        let lossy = mbt.points.last().unwrap();
        assert_eq!(clean.result.frames_lost, 0, "loss 0 drops nothing");
        assert!(lossy.result.frames_lost > 0, "loss 0.5 drops frames");
        assert!(
            lossy.file_ratio <= clean.file_ratio,
            "heavy loss should not improve delivery ({} > {})",
            lossy.file_ratio,
            clean.file_ratio
        );
    }

    #[test]
    fn quick_fig3f_attendance_helps() {
        let fig = fig3f(Scale::Quick);
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        assert!(
            mbt.points.last().unwrap().file_ratio >= mbt.points[0].file_ratio,
            "full attendance should deliver at least as much"
        );
    }
}
