//! The experiment registry: one function per figure of the paper's
//! evaluation (§VI-B).
//!
//! Figure 2 (a)–(e) sweep five parameters on the DieselNet-style pair-wise
//! bus trace; Figure 3 (a)–(f) sweeps the same five plus attendance rate on
//! the NUS-style classroom clique trace. Each function takes a mutable
//! [`RunContext`] — the one knob bundle for scale, execution, trace backing
//! and telemetry — and returns a [`Figure`] holding one series per protocol
//! (MBT, MBT-Q, MBT-QM).
//!
//! ```no_run
//! use mbt_experiments::figures::{fig2a, RunContext, Scale};
//!
//! let mut ctx = RunContext::new(Scale::Quick);
//! let fig = fig2a(&mut ctx);
//! assert_eq!(fig.id, "fig2a");
//! ```
//!
//! The context decides *where the contacts live*: by default every figure
//! generates its trace in memory; [`RunContext::sharded`] redirects
//! generation into on-disk time-windowed shards which the sweep then
//! replays with bounded memory. The resulting figures are byte-identical
//! either way — the backing store is invisible to the simulation.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use dtn_sim::telemetry::{Phase, Telemetry};
use dtn_sim::FaultPlan;
use dtn_trace::generators::{DieselNetConfig, NusConfig};
use dtn_trace::{ContactSink, ShardWriter, SimDuration, TraceBuilder, TraceSource};
use mbt_core::{MbtConfig, ProtocolSpec};

use crate::exec::{ExecConfig, ParallelRunner};
use crate::runner::SimParams;
use crate::sweep::Figure;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small population / short horizon — for tests and benches.
    Quick,
    /// The full scale used for `EXPERIMENTS.md`.
    #[default]
    Full,
}

impl Scale {
    fn days(self) -> u64 {
        match self {
            Scale::Quick => 6,
            Scale::Full => 15,
        }
    }

    fn buses(self) -> u32 {
        match self {
            Scale::Quick => 16,
            Scale::Full => 40,
        }
    }

    fn students(self) -> u32 {
        match self {
            Scale::Quick => 30,
            Scale::Full => 80,
        }
    }

    fn xs(self, full: &[f64], quick: &[f64]) -> Vec<f64> {
        match self {
            Scale::Quick => quick.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }
}

const SEED: u64 = 42;

/// Everything a figure run needs beyond its identity: the [`Scale`], the
/// execution config (jobs/replicates/master seed), where the generated
/// trace lives (in memory, or spilled to on-disk shards), and whether to
/// collect [`Telemetry`].
///
/// One context serves many figure calls; the accumulated telemetry is
/// merged across them and retrieved with [`RunContext::take_telemetry`].
///
/// The figure output is a pure function of `(scale, exec, xs)` — the trace
/// backing and the telemetry flag never change a single byte of it.
#[derive(Debug)]
pub struct RunContext {
    scale: Scale,
    exec: ExecConfig,
    shard_dir: Option<PathBuf>,
    shard_window: SimDuration,
    prefetch: usize,
    collect_telemetry: bool,
    telemetry: Telemetry,
    xs_override: Option<Vec<f64>>,
    protocols: Vec<ProtocolSpec>,
}

impl RunContext {
    /// A context at `scale` with default execution, in-memory traces and no
    /// telemetry.
    pub fn new(scale: Scale) -> RunContext {
        RunContext {
            scale,
            exec: ExecConfig::default(),
            shard_dir: None,
            shard_window: SimDuration::from_days(1),
            prefetch: 0,
            collect_telemetry: false,
            telemetry: Telemetry::default(),
            xs_override: None,
            protocols: ProtocolSpec::TRIAD.to_vec(),
        }
    }

    /// Replaces the protocol list every subsequent figure sweeps over (one
    /// series per spec, in list order). Defaults to the paper's triad; the
    /// head-to-head figures override it with the full
    /// [`ProtocolSpec::builtin`] registry regardless.
    pub fn protocols(mut self, protocols: impl Into<Vec<ProtocolSpec>>) -> RunContext {
        self.protocols = protocols.into();
        self
    }

    /// Sets the execution config (jobs/replicates/master seed).
    pub fn exec(mut self, exec: ExecConfig) -> RunContext {
        self.exec = exec;
        self
    }

    /// Spills every generated trace into time-windowed shards under
    /// `dir/<figure-id>` and replays the sweep from disk with bounded
    /// memory. Figures are byte-identical to the in-memory backing.
    pub fn sharded(mut self, dir: impl Into<PathBuf>) -> RunContext {
        self.shard_dir = Some(dir.into());
        self
    }

    /// Sets the shard time-window (default one day). Only meaningful after
    /// [`RunContext::sharded`].
    pub fn shard_window(mut self, window: SimDuration) -> RunContext {
        self.shard_window = window;
        self
    }

    /// Sets the shard prefetch depth threaded into every figure's
    /// [`SimParams`]: the replay decodes up to `depth` shards ahead of the
    /// simulation on a background worker. Only meaningful after
    /// [`RunContext::sharded`] (in-memory traces ignore it). Figures are
    /// byte-identical at any depth.
    pub fn prefetch(mut self, depth: usize) -> RunContext {
        self.prefetch = depth;
        self
    }

    /// Turns on telemetry collection: counters and phase spans of every
    /// subsequent figure call are merged into the context, to be claimed
    /// with [`RunContext::take_telemetry`].
    pub fn observed(mut self) -> RunContext {
        self.collect_telemetry = true;
        self
    }

    /// The context's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Overrides the x values of the *next* figure call (consumed by it).
    /// The determinism tests use this to pin e.g. the loss=0 point of
    /// [`fault_sweep`] against the fault-free path.
    pub fn set_xs(&mut self, xs: Vec<f64>) {
        self.xs_override = Some(xs);
    }

    /// Claims the telemetry merged so far, leaving an empty sink behind.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.telemetry)
    }

    fn xs_for(&mut self, default: Vec<f64>) -> Vec<f64> {
        self.xs_override.take().unwrap_or(default)
    }

    fn telemetry_sink(&mut self) -> Option<&mut Telemetry> {
        self.collect_telemetry.then_some(&mut self.telemetry)
    }

    /// A sweep runner for this context's execution config and protocol list.
    fn runner(&self) -> ParallelRunner {
        ParallelRunner::new(self.exec).with_protocols(self.protocols.clone())
    }

    /// A runner pinned to the full built-in registry (the head-to-head
    /// figures compare every variant whatever the context's default list).
    fn registry_runner(&self) -> ParallelRunner {
        ParallelRunner::new(self.exec).with_protocols(ProtocolSpec::builtin())
    }

    /// Materializes one figure's trace through the configured backing:
    /// straight into a [`TraceBuilder`] (in memory) or through a
    /// [`ShardWriter`] under `shard_dir/<name>`. Generation is charged to
    /// the trace-load span when observed.
    ///
    /// Panics on shard I/O errors — an experiment cannot meaningfully
    /// continue on a half-written trace.
    fn source<F>(&mut self, name: &str, fill: F) -> Arc<dyn TraceSource>
    where
        F: FnOnce(&mut dyn ContactSink),
    {
        let started = Instant::now();
        let source: Arc<dyn TraceSource> = match &self.shard_dir {
            None => {
                let mut builder = TraceBuilder::new();
                fill(&mut builder);
                Arc::new(builder.build())
            }
            Some(dir) => {
                let mut writer = ShardWriter::create(dir.join(name), self.shard_window)
                    .unwrap_or_else(|e| panic!("creating shard directory for {name}: {e}"));
                fill(&mut writer);
                let sharded = writer
                    .finish()
                    .unwrap_or_else(|e| panic!("writing shards for {name}: {e}"));
                Arc::new(sharded)
            }
        };
        if self.collect_telemetry {
            self.telemetry
                .phases
                .add(Phase::TraceLoad, started.elapsed());
        }
        source
    }
}

fn dieselnet_cfg(scale: Scale) -> DieselNetConfig {
    DieselNetConfig::new(scale.buses(), scale.days()).seed(SEED)
}

fn nus_cfg(scale: Scale, attendance: f64) -> NusConfig {
    NusConfig::new(scale.students(), scale.days())
        .seed(SEED)
        .attendance_rate(attendance)
}

fn base_params(scale: Scale, frequent_days: u64, prefetch: usize) -> SimParams {
    SimParams {
        days: scale.days(),
        seed: SEED,
        frequent_window: SimDuration::from_days(frequent_days),
        prefetch,
        ..SimParams::default()
    }
}

fn dieselnet_params(scale: Scale, prefetch: usize) -> SimParams {
    base_params(scale, 3, prefetch)
}

fn nus_params(scale: Scale, prefetch: usize) -> SimParams {
    base_params(scale, 1, prefetch)
}

fn dieselnet_source(ctx: &mut RunContext, name: &str) -> Arc<dyn TraceSource> {
    let cfg = dieselnet_cfg(ctx.scale);
    ctx.source(name, |sink| cfg.generate_into(sink))
}

fn nus_source(ctx: &mut RunContext, name: &str) -> Arc<dyn TraceSource> {
    let cfg = nus_cfg(ctx.scale, 0.8);
    ctx.source(name, |sink| cfg.generate_into(sink))
}

// ----- Figure 2: UMassDieselNet-style trace -----

/// Fig 2(a): delivery ratios vs percentage of Internet-access nodes.
pub fn fig2a(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]));
    let source = dieselnet_source(ctx, "fig2a");
    ctx.runner().sweep_shared_source(
        "fig2a",
        "DieselNet: delivery ratio vs % Internet-access nodes",
        "internet-access fraction",
        &xs,
        source,
        |x| SimParams {
            internet_fraction: x,
            ..dieselnet_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 2(b): delivery ratios vs number of new files per day.
pub fn fig2b(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[10.0, 25.0, 50.0, 75.0, 100.0], &[10.0, 50.0]));
    let source = dieselnet_source(ctx, "fig2b");
    ctx.runner().sweep_shared_source(
        "fig2b",
        "DieselNet: delivery ratio vs new files per day",
        "new files per day",
        &xs,
        source,
        |x| SimParams {
            files_per_day: x as u32,
            ..dieselnet_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 2(c): delivery ratios vs file time-to-live.
pub fn fig2c(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 5.0]));
    let source = dieselnet_source(ctx, "fig2c");
    ctx.runner().sweep_shared_source(
        "fig2c",
        "DieselNet: delivery ratio vs TTL of file (days)",
        "TTL (days)",
        &xs,
        source,
        |x| SimParams {
            ttl_days: x as u64,
            ..dieselnet_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 2(d): delivery ratios vs metadata exchanged per contact. Captures the
/// paper's exception: at very small metadata budgets, MBT-QM's file ratio and
/// MBT-Q's metadata ratio can win because the few circulating metadata are
/// biased.
pub fn fig2d(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[1.0, 5.0, 10.0, 20.0, 40.0], &[1.0, 20.0]));
    let source = dieselnet_source(ctx, "fig2d");
    ctx.runner().sweep_shared_source(
        "fig2d",
        "DieselNet: delivery ratio vs metadata per contact",
        "metadata per contact",
        &xs,
        source,
        |x| SimParams {
            config: MbtConfig::new().metadata_per_contact(x as u32),
            ..dieselnet_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 2(e): delivery ratios vs files exchanged per contact.
pub fn fig2e(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[1.0, 2.0, 4.0, 6.0, 10.0], &[1.0, 4.0]));
    let source = dieselnet_source(ctx, "fig2e");
    ctx.runner().sweep_shared_source(
        "fig2e",
        "DieselNet: delivery ratio vs files per contact",
        "files per contact",
        &xs,
        source,
        |x| SimParams {
            config: MbtConfig::new().files_per_contact(x as u32),
            ..dieselnet_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

// ----- Figure 3: NUS-style student trace -----

/// Fig 3(a): delivery ratios vs percentage of Internet-access nodes. The
/// paper highlights that MBT/MBT-Q file ratios rise quickly while MBT-QM
/// stays flat (it has no file discovery process).
pub fn fig3a(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]));
    let source = nus_source(ctx, "fig3a");
    ctx.runner().sweep_shared_source(
        "fig3a",
        "NUS: delivery ratio vs % Internet-access nodes",
        "internet-access fraction",
        &xs,
        source,
        |x| SimParams {
            internet_fraction: x,
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 3(b): delivery ratios vs number of new files per day.
pub fn fig3b(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[10.0, 25.0, 50.0, 75.0, 100.0], &[10.0, 50.0]));
    let source = nus_source(ctx, "fig3b");
    ctx.runner().sweep_shared_source(
        "fig3b",
        "NUS: delivery ratio vs new files per day",
        "new files per day",
        &xs,
        source,
        |x| SimParams {
            files_per_day: x as u32,
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 3(c): delivery ratios vs file time-to-live.
pub fn fig3c(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 5.0]));
    let source = nus_source(ctx, "fig3c");
    ctx.runner().sweep_shared_source(
        "fig3c",
        "NUS: delivery ratio vs TTL of file (days)",
        "TTL (days)",
        &xs,
        source,
        |x| SimParams {
            ttl_days: x as u64,
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 3(d): delivery ratios vs metadata exchanged per contact.
pub fn fig3d(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[1.0, 5.0, 10.0, 20.0, 40.0], &[1.0, 20.0]));
    let source = nus_source(ctx, "fig3d");
    ctx.runner().sweep_shared_source(
        "fig3d",
        "NUS: delivery ratio vs metadata per contact",
        "metadata per contact",
        &xs,
        source,
        |x| SimParams {
            config: MbtConfig::new().metadata_per_contact(x as u32),
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 3(e): delivery ratios vs files exchanged per contact.
pub fn fig3e(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[1.0, 2.0, 4.0, 6.0, 10.0], &[1.0, 4.0]));
    let source = nus_source(ctx, "fig3e");
    ctx.runner().sweep_shared_source(
        "fig3e",
        "NUS: delivery ratio vs files per contact",
        "files per contact",
        &xs,
        source,
        |x| SimParams {
            config: MbtConfig::new().files_per_contact(x as u32),
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Fig 3(f): delivery ratios vs attendance rate — the probability an
/// enrolled student actually attends a class session. Mobility itself changes
/// with x, so each x generates its own trace (its own shard directory
/// `fig3f/x<i>` under a sharded context).
pub fn fig3f(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.5, 0.6, 0.7, 0.8, 0.9, 1.0], &[0.5, 1.0]));
    let sources: Vec<Arc<dyn TraceSource>> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let cfg = nus_cfg(scale, x);
            ctx.source(&format!("fig3f/x{i}"), |sink| cfg.generate_into(sink))
        })
        .collect();
    let mut sources = sources.into_iter();
    ctx.runner().sweep_sources(
        "fig3f",
        "NUS: delivery ratio vs attendance rate",
        "attendance rate",
        &xs,
        |_| {
            (
                sources.next().expect("one source per x"),
                nus_params(scale, prefetch),
            )
        },
        ctx.telemetry_sink(),
    )
}

// ----- Fault injection -----

/// Robustness sweep (not in the paper): delivery ratios vs broadcast
/// frame-loss rate on the NUS trace, across all three protocol variants.
/// Loss 0 is the clean baseline — a noop plan, byte-identical to the
/// fault-free sweep; for lossy cells the executor derives the fault seed
/// from the cell's grid coordinates, so `--jobs N` runs stay bit-identical.
/// Override the loss rates with [`RunContext::set_xs`].
pub fn fault_sweep(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], &[0.0, 0.25, 0.5]));
    let source = nus_source(ctx, "fault_sweep");
    ctx.runner().sweep_shared_source(
        "fault_sweep",
        "NUS: delivery ratio vs broadcast loss rate",
        "loss rate",
        &xs,
        source,
        |x| SimParams {
            faults: FaultPlan::none().loss(x),
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

// ----- Protocol-variant head-to-head (extension) -----

/// Head-to-head on the DieselNet-style trace: every built-in protocol
/// variant ([`ProtocolSpec::builtin`] — the triad plus PopCache and
/// DiffuseRep) swept over the Internet-access fraction. Delivery ratios sit
/// in the series points; per-point delivery *delays* ride along in each
/// point's pooled [`crate::runner::SimResult`] and are rendered by
/// [`crate::report::figure_delay_csv`].
pub fn head_to_head_dieselnet(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]));
    let source = dieselnet_source(ctx, "h2h_dieselnet");
    ctx.registry_runner().sweep_shared_source(
        "h2h_dieselnet",
        "DieselNet: protocol variants head-to-head",
        "internet-access fraction",
        &xs,
        source,
        |x| SimParams {
            internet_fraction: x,
            ..dieselnet_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Head-to-head on the NUS-style trace: every built-in protocol variant
/// swept over the Internet-access fraction (see
/// [`head_to_head_dieselnet`]).
pub fn head_to_head_nus(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.1, 0.3, 0.5, 0.7, 0.9], &[0.1, 0.5, 0.9]));
    let source = nus_source(ctx, "h2h_nus");
    ctx.registry_runner().sweep_shared_source(
        "h2h_nus",
        "NUS: protocol variants head-to-head",
        "internet-access fraction",
        &xs,
        source,
        |x| SimParams {
            internet_fraction: x,
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// [`fault_sweep`] extended to every built-in variant: delivery ratios vs
/// broadcast frame-loss rate with PopCache and DiffuseRep alongside the
/// triad. A distinct figure id keeps its CSV separate from the legacy
/// three-series `fault_sweep` output.
pub fn fault_sweep_variants(ctx: &mut RunContext) -> Figure {
    let scale = ctx.scale;
    let prefetch = ctx.prefetch;
    let xs = ctx.xs_for(scale.xs(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], &[0.0, 0.25, 0.5]));
    let source = nus_source(ctx, "fault_sweep_variants");
    ctx.registry_runner().sweep_shared_source(
        "fault_sweep_variants",
        "NUS: delivery ratio vs loss rate, all protocol variants",
        "loss rate",
        &xs,
        source,
        |x| SimParams {
            faults: FaultPlan::none().loss(x),
            ..nus_params(scale, prefetch)
        },
        ctx.telemetry_sink(),
    )
}

/// Every Figure-2 experiment in order.
pub fn all_fig2(ctx: &mut RunContext) -> Vec<Figure> {
    vec![fig2a(ctx), fig2b(ctx), fig2c(ctx), fig2d(ctx), fig2e(ctx)]
}

/// Every Figure-3 experiment in order.
pub fn all_fig3(ctx: &mut RunContext) -> Vec<Figure> {
    vec![
        fig3a(ctx),
        fig3b(ctx),
        fig3c(ctx),
        fig3d(ctx),
        fig3e(ctx),
        fig3f(ctx),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_core::ProtocolKind;

    #[test]
    fn quick_fig2a_has_expected_shape() {
        let fig = fig2a(&mut RunContext::new(Scale::Quick));
        assert_eq!(fig.series.len(), 3);
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        assert_eq!(mbt.points.len(), 3);
        // Delivery grows with Internet access for the full protocol.
        assert!(
            mbt.points.last().unwrap().file_ratio >= mbt.points[0].file_ratio,
            "file ratio should not fall as internet access rises"
        );
    }

    #[test]
    fn quick_fig3a_mbtqm_flat_without_discovery() {
        let fig = fig3a(&mut RunContext::new(Scale::Quick));
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        let qm = fig.series_for(ProtocolKind::MbtQm).unwrap();
        // At high internet fraction MBT should clearly beat MBT-QM on files.
        let last = mbt.points.len() - 1;
        assert!(
            mbt.points[last].file_ratio >= qm.points[last].file_ratio,
            "MBT {} < MBT-QM {}",
            mbt.points[last].file_ratio,
            qm.points[last].file_ratio
        );
    }

    #[test]
    fn quick_fault_sweep_loses_delivery_at_high_loss() {
        let fig = fault_sweep(&mut RunContext::new(Scale::Quick));
        assert_eq!(fig.series.len(), 3);
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        assert_eq!(mbt.points[0].x, 0.0);
        let clean = mbt.points.first().unwrap();
        let lossy = mbt.points.last().unwrap();
        assert_eq!(clean.result.frames_lost, 0, "loss 0 drops nothing");
        assert!(lossy.result.frames_lost > 0, "loss 0.5 drops frames");
        assert!(
            lossy.file_ratio <= clean.file_ratio,
            "heavy loss should not improve delivery ({} > {})",
            lossy.file_ratio,
            clean.file_ratio
        );
    }

    #[test]
    fn quick_fig3f_attendance_helps() {
        let fig = fig3f(&mut RunContext::new(Scale::Quick));
        let mbt = fig.series_for(ProtocolKind::Mbt).unwrap();
        assert!(
            mbt.points.last().unwrap().file_ratio >= mbt.points[0].file_ratio,
            "full attendance should deliver at least as much"
        );
    }

    #[test]
    fn quick_head_to_head_covers_every_builtin_variant() {
        let mut ctx = RunContext::new(Scale::Quick);
        ctx.set_xs(vec![0.5]);
        let fig = head_to_head_nus(&mut ctx);
        assert_eq!(fig.series.len(), ProtocolSpec::builtin().len());
        for (series, spec) in fig.series.iter().zip(ProtocolSpec::builtin()) {
            assert_eq!(series.protocol, spec);
            assert!(series.points[0].result.queries > 0, "{spec}: no queries");
        }
    }

    #[test]
    fn context_protocol_list_widens_standard_figures() {
        let mut ctx = RunContext::new(Scale::Quick)
            .protocols(vec![ProtocolSpec::MBT, ProtocolSpec::POP_CACHE]);
        ctx.set_xs(vec![0.5]);
        let fig = fig3a(&mut ctx);
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series_for(ProtocolSpec::POP_CACHE).is_some());
    }

    #[test]
    fn quick_fault_sweep_variants_has_five_series() {
        let mut ctx = RunContext::new(Scale::Quick);
        ctx.set_xs(vec![0.0, 0.5]);
        let fig = fault_sweep_variants(&mut ctx);
        assert_eq!(fig.series.len(), 5);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
        }
    }

    #[test]
    fn set_xs_overrides_next_figure_only() {
        let mut ctx = RunContext::new(Scale::Quick);
        ctx.set_xs(vec![0.0]);
        let pinned = fault_sweep(&mut ctx);
        assert_eq!(pinned.series[0].points.len(), 1);
        assert_eq!(pinned.series[0].points[0].x, 0.0);
        let default = fault_sweep(&mut ctx);
        assert_eq!(default.series[0].points.len(), 3, "override was consumed");
    }

    #[test]
    fn observed_context_accumulates_telemetry_without_changing_figures() {
        let plain = fig2a(&mut RunContext::new(Scale::Quick));
        let mut ctx = RunContext::new(Scale::Quick).observed();
        let observed = fig2a(&mut ctx);
        assert_eq!(plain, observed);
        let telemetry = ctx.take_telemetry();
        assert!(telemetry.counters.contacts > 0);
        assert_eq!(telemetry.counters.shards_loaded, 0, "in-memory backing");
    }
}
