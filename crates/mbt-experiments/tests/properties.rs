//! Property-based tests on the full simulation pipeline: conservation laws
//! and monotonicity that must hold for any seed.

use proptest::prelude::*;

use dtn_trace::generators::NusConfig;
use mbt_core::ProtocolSpec;
use mbt_experiments::runner::{run_simulation, SimParams};
use mbt_experiments::workload::{draw_queries, generate_batch, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn deliveries_never_exceed_queries_or_go_negative(seed in 0u64..1_000) {
        let trace = NusConfig::new(20, 4).seed(seed).generate();
        for protocol in ProtocolSpec::builtin() {
            let r = run_simulation(&trace, &SimParams::builder()
                .protocol(protocol)
                .days(4)
                .files_per_day(8)
                .seed(seed)
                .build(), None);
            // Each (node, uri) query is counted delivered at most once.
            prop_assert!(r.metadata_delivered <= r.queries);
            prop_assert!(r.files_delivered <= r.queries);
            prop_assert!(r.metadata_ratio <= 1.0 + 1e-9);
            prop_assert!(r.file_ratio <= 1.0 + 1e-9);
            // A delivered file implies its metadata was deliverable too.
            prop_assert!(r.files_delivered <= r.metadata_delivered,
                "{protocol}: files {} > metadata {}", r.files_delivered, r.metadata_delivered);
        }
    }

    #[test]
    fn mbtqm_never_broadcasts_standalone_metadata(seed in 0u64..1_000) {
        let trace = NusConfig::new(16, 3).seed(seed).generate();
        let r = run_simulation(&trace, &SimParams::builder()
            .protocol(ProtocolSpec::MBT_QM)
            .days(3)
            .files_per_day(6)
            .seed(seed)
            .build(), None);
        prop_assert_eq!(r.metadata_broadcasts, 0);
        prop_assert_eq!(r.queries_distributed, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn workload_batches_have_unique_uris_across_days(
        files in 1u32..30, ttl in 1u64..5, days in 1u64..6, seed in any::<u64>()
    ) {
        let cfg = WorkloadConfig::new(files, ttl);
        let mut rng = dtn_sim::rng::stream(seed, "workload");
        let mut seen = std::collections::BTreeSet::new();
        for day in 0..days {
            let batch = generate_batch(&cfg, day, &mut rng);
            prop_assert_eq!(batch.files.len() as u32, files);
            for f in &batch.files {
                prop_assert!(seen.insert(f.uri.clone()), "duplicate uri {}", f.uri);
                // TTL applied from the publish instant.
                prop_assert_eq!(
                    f.metadata.expires().unwrap(),
                    batch.at + dtn_trace::SimDuration::from_days(ttl)
                );
                prop_assert!((0.0..=1.0).contains(&f.popularity.value()));
            }
        }
    }

    #[test]
    fn drawn_queries_reference_real_files(files in 1u32..30, seed in any::<u64>()) {
        let cfg = WorkloadConfig::new(files, 3);
        let mut rng = dtn_sim::rng::stream(seed, "workload");
        let batch = generate_batch(&cfg, 0, &mut rng);
        let picks = draw_queries(&batch, dtn_trace::NodeId::new(0), &mut rng);
        for (idx, query) in picks {
            prop_assert!(idx < batch.files.len());
            prop_assert!(batch.files[idx].metadata.matches_query(&query));
        }
    }
}
