//! Store-carry-forward routing protocols for delay tolerant networks.
//!
//! Routing — sending a message from one node to another — is the substrate
//! the MBT paper builds on (§II-A): "Numerous routing protocols have been
//! proposed" for DTNs, which "support communication between intermittently-
//! connected nodes using the store-carry-forward routing mechanism." This
//! crate implements the classical protocols that literature compares
//! against, and that the reproduction uses as dissemination baselines:
//!
//! - [`protocols::Epidemic`] — flood every missing message (delivery upper
//!   bound, maximal overhead);
//! - [`protocols::DirectDelivery`] — only hand messages to their destination
//!   (overhead lower bound);
//! - [`protocols::Prophet`] — probabilistic routing with delivery
//!   predictabilities, aging, and transitivity (Lindgren et al., the paper's
//!   ref \[10\]);
//! - [`protocols::SprayAndWait`] — bounded-copy spraying (binary variant).
//!
//! [`sim::RoutingSim`] drives any of them over a
//! [`dtn_trace::ContactTrace`] and reports delivery ratio, delay, and
//! transmission overhead.
//!
//! # Example
//!
//! ```
//! use dtn_routing::message::Message;
//! use dtn_routing::protocols::Epidemic;
//! use dtn_routing::sim::RoutingSim;
//! use dtn_trace::{Contact, ContactTrace, NodeId, SimTime};
//!
//! let trace: ContactTrace = vec![
//!     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(10), SimTime::from_secs(20))?,
//!     Contact::pairwise(NodeId::new(1), NodeId::new(2), SimTime::from_secs(30), SimTime::from_secs(40))?,
//! ].into_iter().collect();
//!
//! let messages = vec![Message::new(0, NodeId::new(0), NodeId::new(2), SimTime::ZERO, None)];
//! let report = RoutingSim::new(&trace, Epidemic::new()).run(messages);
//! assert_eq!(report.delivered, 1, "epidemic reaches n2 through n1");
//! # Ok::<(), dtn_trace::ContactError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod message;
pub mod protocols;
pub mod sim;

pub use buffer::{Buffer, DropPolicy, EvictLowestScore, EvictionPolicy};
pub use message::{Message, MessageId};
pub use protocols::{AvailabilityDiffusion, RoutingProtocol};
pub use sim::{RoutingReport, RoutingSim};
