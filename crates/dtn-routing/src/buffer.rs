//! Per-node message buffers with bounded capacity and drop policies.
//!
//! DTN nodes carry message copies in finite storage; when a buffer is full a
//! drop policy decides which copy to evict. Copy counts (for spray-and-wait)
//! are stored alongside each message.
//!
//! This module is also the home of the *shared* eviction seam
//! ([`EvictionPolicy`]) that higher layers plug protocol-specific rankings
//! into — `mbt-core`'s popularity-ranked bounded file cache picks its
//! victims through [`EvictLowestScore`].

use std::collections::BTreeMap;

use dtn_trace::SimTime;

use crate::message::{Message, MessageId};

/// What to evict when a full buffer receives a new message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Reject the incoming message (drop-tail).
    #[default]
    Tail,
    /// Evict the oldest stored message (by creation time) to make room.
    Oldest,
}

/// A pluggable victim-selection policy for capacity eviction.
///
/// Callers present the *evictable* candidates (items protected by the
/// protocol — e.g. files a node's own user still wants — are simply not
/// offered) together with a ranking score; the policy names the victim, or
/// `None` to refuse eviction (the incoming item is rejected instead).
pub trait EvictionPolicy<K> {
    /// Picks the victim among `(key, score)` candidates.
    fn pick_victim(&self, candidates: &[(K, f64)]) -> Option<K>;
}

/// Evicts the lowest-scored candidate, breaking score ties by key order so
/// the choice is deterministic regardless of candidate ordering.
///
/// # Example
///
/// ```
/// use dtn_routing::{EvictLowestScore, EvictionPolicy};
///
/// let candidates = vec![("b", 2.0), ("a", 1.0), ("c", 1.0)];
/// assert_eq!(EvictLowestScore.pick_victim(&candidates), Some("a"));
/// let empty: Vec<(&str, f64)> = Vec::new();
/// assert_eq!(EvictLowestScore.pick_victim(&empty), None);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictLowestScore;

impl<K: Ord + Clone> EvictionPolicy<K> for EvictLowestScore {
    fn pick_victim(&self, candidates: &[(K, f64)]) -> Option<K> {
        candidates
            .iter()
            .min_by(|x, y| x.1.total_cmp(&y.1).then_with(|| x.0.cmp(&y.0)))
            .map(|(k, _)| k.clone())
    }
}

/// One stored copy: the message plus protocol state (remaining copy tokens).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredCopy {
    /// The message.
    pub message: Message,
    /// Copy tokens held (used by spray-and-wait; 1 elsewhere).
    pub tokens: u32,
}

/// A bounded per-node message buffer.
///
/// # Example
///
/// ```
/// use dtn_routing::{Buffer, DropPolicy, Message};
/// use dtn_trace::{NodeId, SimTime};
///
/// let mut buf = Buffer::new(2, DropPolicy::Oldest);
/// let m = |id, t| Message::new(id, NodeId::new(0), NodeId::new(1), SimTime::from_secs(t), None);
/// buf.insert(m(0, 10), 1);
/// buf.insert(m(1, 20), 1);
/// buf.insert(m(2, 30), 1); // evicts the oldest (id 0)
/// assert!(!buf.contains(dtn_routing::MessageId(0)));
/// assert_eq!(buf.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Buffer {
    capacity: usize,
    policy: DropPolicy,
    copies: BTreeMap<MessageId, StoredCopy>,
}

impl Buffer {
    /// Creates a buffer holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Buffer {
            capacity,
            policy,
            copies: BTreeMap::new(),
        }
    }

    /// Creates an effectively unbounded buffer.
    pub fn unbounded() -> Self {
        Buffer::new(usize::MAX, DropPolicy::Tail)
    }

    /// Inserts a copy with `tokens` copy tokens. Returns `true` if stored
    /// (duplicates are rejected; a full drop-tail buffer rejects; a full
    /// drop-oldest buffer evicts first).
    pub fn insert(&mut self, message: Message, tokens: u32) -> bool {
        if self.copies.contains_key(&message.id()) {
            return false;
        }
        if self.copies.len() >= self.capacity {
            match self.policy {
                DropPolicy::Tail => return false,
                DropPolicy::Oldest => {
                    if let Some(oldest) = self
                        .copies
                        .values()
                        .min_by_key(|c| (c.message.created(), c.message.id()))
                        .map(|c| c.message.id())
                    {
                        self.copies.remove(&oldest);
                    }
                }
            }
        }
        self.copies
            .insert(message.id(), StoredCopy { message, tokens });
        true
    }

    /// True if a copy of `id` is stored.
    pub fn contains(&self, id: MessageId) -> bool {
        self.copies.contains_key(&id)
    }

    /// The stored copy of `id`, if any.
    pub fn get(&self, id: MessageId) -> Option<&StoredCopy> {
        self.copies.get(&id)
    }

    /// Mutable access to the stored copy of `id`.
    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut StoredCopy> {
        self.copies.get_mut(&id)
    }

    /// Removes the copy of `id`, returning it.
    pub fn remove(&mut self, id: MessageId) -> Option<StoredCopy> {
        self.copies.remove(&id)
    }

    /// Iterates over stored copies in message-id order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredCopy> {
        self.copies.values()
    }

    /// Number of stored copies.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// Drops expired copies; returns how many were dropped.
    pub fn prune_expired(&mut self, now: SimTime) -> usize {
        let before = self.copies.len();
        self.copies.retain(|_, c| !c.message.is_expired(now));
        before - self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::NodeId;

    fn msg(id: u64, created: u64) -> Message {
        Message::new(
            id,
            NodeId::new(0),
            NodeId::new(1),
            SimTime::from_secs(created),
            None,
        )
    }

    #[test]
    fn insert_and_duplicate_rejection() {
        let mut b = Buffer::unbounded();
        assert!(b.insert(msg(1, 0), 1));
        assert!(!b.insert(msg(1, 0), 1));
        assert_eq!(b.len(), 1);
        assert!(b.contains(MessageId(1)));
    }

    #[test]
    fn drop_tail_rejects_when_full() {
        let mut b = Buffer::new(1, DropPolicy::Tail);
        assert!(b.insert(msg(1, 0), 1));
        assert!(!b.insert(msg(2, 10), 1));
        assert!(b.contains(MessageId(1)));
    }

    #[test]
    fn drop_oldest_evicts_by_creation() {
        let mut b = Buffer::new(2, DropPolicy::Oldest);
        b.insert(msg(1, 50), 1);
        b.insert(msg(2, 10), 1);
        b.insert(msg(3, 99), 1);
        assert!(!b.contains(MessageId(2)), "oldest (t=10) evicted");
        assert!(b.contains(MessageId(1)));
        assert!(b.contains(MessageId(3)));
    }

    #[test]
    fn tokens_are_mutable() {
        let mut b = Buffer::unbounded();
        b.insert(msg(1, 0), 8);
        b.get_mut(MessageId(1)).unwrap().tokens = 4;
        assert_eq!(b.get(MessageId(1)).unwrap().tokens, 4);
    }

    #[test]
    fn prune_expired_drops_dead_messages() {
        let mut b = Buffer::unbounded();
        b.insert(
            Message::new(
                1,
                NodeId::new(0),
                NodeId::new(1),
                SimTime::ZERO,
                Some(SimTime::from_secs(10)),
            ),
            1,
        );
        b.insert(msg(2, 0), 1);
        assert_eq!(b.prune_expired(SimTime::from_secs(20)), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_returns_copy() {
        let mut b = Buffer::unbounded();
        b.insert(msg(1, 0), 3);
        let copy = b.remove(MessageId(1)).unwrap();
        assert_eq!(copy.tokens, 3);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Buffer::new(0, DropPolicy::Tail);
    }

    #[test]
    fn evict_lowest_score_is_order_independent() {
        let fwd = vec![(1u32, 0.5), (2, 0.25), (3, 0.25)];
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(EvictLowestScore.pick_victim(&fwd), Some(2));
        assert_eq!(EvictLowestScore.pick_victim(&rev), Some(2), "ties by key");
    }

    #[test]
    fn evict_lowest_score_refuses_without_candidates() {
        let empty: Vec<(u32, f64)> = Vec::new();
        assert_eq!(EvictLowestScore.pick_victim(&empty), None);
    }
}
