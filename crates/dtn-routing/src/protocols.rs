//! The routing protocols.
//!
//! All four follow the store-carry-forward pattern over pair-wise contacts
//! (clique contacts are decomposed into pairs by the simulator — broadcast
//! scheduling is the MBT paper's contribution, not the routing baselines').

use std::collections::BTreeMap;

use dtn_trace::{NodeId, SimTime};

use crate::buffer::Buffer;
use crate::message::MessageId;

/// A read-only view of the two endpoints' buffers during a contact.
#[derive(Debug)]
pub struct ContactView<'a> {
    /// First endpoint's buffer.
    pub a: &'a Buffer,
    /// Second endpoint's buffer.
    pub b: &'a Buffer,
}

/// A transfer decision returned by a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Copy `id` from `from` to the other endpoint; the receiver's copy gets
    /// `tokens_to_peer` copy tokens and the sender's copy is updated to
    /// `tokens_kept` (spray-and-wait splits its tokens this way; epidemic
    /// uses 1/1).
    Replicate {
        /// The message to copy.
        id: MessageId,
        /// The sending endpoint.
        from: NodeId,
        /// Tokens granted to the receiver's new copy.
        tokens_to_peer: u32,
        /// Tokens the sender keeps.
        tokens_kept: u32,
    },
    /// Move `id` from `from` to the other endpoint (the sender's copy is
    /// removed).
    Forward {
        /// The message to move.
        id: MessageId,
        /// The sending endpoint.
        from: NodeId,
    },
}

/// A store-carry-forward routing protocol.
///
/// Implementations decide, per contact, which messages to replicate or
/// forward; the simulator applies the actions and tracks deliveries. The
/// trait is object-safe so simulations can switch protocols at runtime.
pub trait RoutingProtocol {
    /// A short protocol name for reports.
    fn name(&self) -> &'static str;

    /// Called when `a` and `b` meet; returns the transfers to apply, in
    /// order (the simulator may truncate to a per-contact budget).
    fn on_contact(
        &mut self,
        a: NodeId,
        b: NodeId,
        view: &ContactView<'_>,
        now: SimTime,
    ) -> Vec<Action>;

    /// Initial copy tokens a freshly created message starts with at its
    /// source (1 for all protocols except spray-and-wait).
    fn initial_tokens(&self) -> u32 {
        1
    }
}

/// Epidemic routing: replicate every message the peer is missing
/// (paper §II-A's flooding family; the delivery upper bound).
#[derive(Debug, Clone, Default)]
pub struct Epidemic {
    _private: (),
}

impl Epidemic {
    /// Creates the protocol.
    pub fn new() -> Self {
        Epidemic::default()
    }
}

impl RoutingProtocol for Epidemic {
    fn name(&self) -> &'static str {
        "epidemic"
    }

    fn on_contact(
        &mut self,
        a: NodeId,
        b: NodeId,
        view: &ContactView<'_>,
        _now: SimTime,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        for copy in view.a.iter() {
            if !view.b.contains(copy.message.id()) {
                actions.push(Action::Replicate {
                    id: copy.message.id(),
                    from: a,
                    tokens_to_peer: 1,
                    tokens_kept: 1,
                });
            }
        }
        for copy in view.b.iter() {
            if !view.a.contains(copy.message.id()) {
                actions.push(Action::Replicate {
                    id: copy.message.id(),
                    from: b,
                    tokens_to_peer: 1,
                    tokens_kept: 1,
                });
            }
        }
        actions
    }
}

/// Direct delivery: a message is only ever handed to its destination
/// (the overhead lower bound — exactly one transmission per delivery).
#[derive(Debug, Clone, Default)]
pub struct DirectDelivery {
    _private: (),
}

impl DirectDelivery {
    /// Creates the protocol.
    pub fn new() -> Self {
        DirectDelivery::default()
    }
}

impl RoutingProtocol for DirectDelivery {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn on_contact(
        &mut self,
        a: NodeId,
        b: NodeId,
        view: &ContactView<'_>,
        _now: SimTime,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        for copy in view.a.iter() {
            if copy.message.dst() == b && !view.b.contains(copy.message.id()) {
                actions.push(Action::Forward {
                    id: copy.message.id(),
                    from: a,
                });
            }
        }
        for copy in view.b.iter() {
            if copy.message.dst() == a && !view.a.contains(copy.message.id()) {
                actions.push(Action::Forward {
                    id: copy.message.id(),
                    from: b,
                });
            }
        }
        actions
    }
}

/// PRoPHET: probabilistic routing using history of encounters and
/// transitivity (Lindgren, Doria, Schelén — the paper's ref \[10\]).
///
/// Each node `x` maintains delivery predictabilities `P(x, y)`; on a contact
/// the predictability for the encountered peer is reinforced, all entries
/// age with time, and transitivity propagates predictability through the
/// peer. A copy is replicated to the peer when the peer's predictability for
/// the destination exceeds the carrier's.
#[derive(Debug, Clone)]
pub struct Prophet {
    p_init: f64,
    beta: f64,
    gamma: f64,
    /// Aging time unit in seconds (predictability decays by `gamma` per unit).
    unit_secs: f64,
    p: BTreeMap<(NodeId, NodeId), f64>,
    last_aged: BTreeMap<NodeId, SimTime>,
}

impl Default for Prophet {
    fn default() -> Self {
        Prophet::new()
    }
}

impl Prophet {
    /// Creates PRoPHET with the canonical parameters:
    /// `P_init = 0.75`, `β = 0.25`, `γ = 0.98`, aging unit 30 minutes.
    pub fn new() -> Self {
        Prophet {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            unit_secs: 1_800.0,
            p: BTreeMap::new(),
            last_aged: BTreeMap::new(),
        }
    }

    /// Overrides the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `p_init`, `beta` ∈ (0, 1], `gamma` ∈ (0, 1), and
    /// `unit_secs > 0`.
    pub fn with_params(p_init: f64, beta: f64, gamma: f64, unit_secs: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_init) && p_init > 0.0, "bad p_init");
        assert!((0.0..=1.0).contains(&beta) && beta > 0.0, "bad beta");
        assert!(gamma > 0.0 && gamma < 1.0, "bad gamma");
        assert!(unit_secs > 0.0, "bad unit");
        Prophet {
            p_init,
            beta,
            gamma,
            unit_secs,
            p: BTreeMap::new(),
            last_aged: BTreeMap::new(),
        }
    }

    /// The current predictability `P(x, y)`.
    pub fn predictability(&self, x: NodeId, y: NodeId) -> f64 {
        self.p.get(&(x, y)).copied().unwrap_or(0.0)
    }

    fn age(&mut self, node: NodeId, now: SimTime) {
        let last = self.last_aged.insert(node, now).unwrap_or(SimTime::ZERO);
        let Some(elapsed) = now.checked_duration_since(last) else {
            return;
        };
        if elapsed.is_zero() {
            return;
        }
        let k = elapsed.as_secs() as f64 / self.unit_secs;
        let factor = self.gamma.powf(k);
        for ((x, _), v) in self.p.iter_mut() {
            if *x == node {
                *v *= factor;
            }
        }
    }

    fn reinforce(&mut self, x: NodeId, y: NodeId) {
        let entry = self.p.entry((x, y)).or_insert(0.0);
        *entry += (1.0 - *entry) * self.p_init;
    }

    fn transit(&mut self, x: NodeId, via: NodeId) {
        // P(x, d) += (1 - P(x, d)) * P(x, via) * P(via, d) * beta
        let p_x_via = self.predictability(x, via);
        let through: Vec<(NodeId, f64)> = self
            .p
            .iter()
            .filter(|((from, _), _)| *from == via)
            .map(|((_, d), v)| (*d, *v))
            .collect();
        for (d, p_via_d) in through {
            if d == x {
                continue;
            }
            let entry = self.p.entry((x, d)).or_insert(0.0);
            *entry += (1.0 - *entry) * p_x_via * p_via_d * self.beta;
        }
    }
}

impl RoutingProtocol for Prophet {
    fn name(&self) -> &'static str {
        "prophet"
    }

    fn on_contact(
        &mut self,
        a: NodeId,
        b: NodeId,
        view: &ContactView<'_>,
        now: SimTime,
    ) -> Vec<Action> {
        self.age(a, now);
        self.age(b, now);
        self.reinforce(a, b);
        self.reinforce(b, a);
        self.transit(a, b);
        self.transit(b, a);

        let mut actions = Vec::new();
        for copy in view.a.iter() {
            let dst = copy.message.dst();
            let better = dst == b || self.predictability(b, dst) > self.predictability(a, dst);
            if better && !view.b.contains(copy.message.id()) {
                actions.push(Action::Replicate {
                    id: copy.message.id(),
                    from: a,
                    tokens_to_peer: 1,
                    tokens_kept: 1,
                });
            }
        }
        for copy in view.b.iter() {
            let dst = copy.message.dst();
            let better = dst == a || self.predictability(a, dst) > self.predictability(b, dst);
            if better && !view.a.contains(copy.message.id()) {
                actions.push(Action::Replicate {
                    id: copy.message.id(),
                    from: b,
                    tokens_to_peer: 1,
                    tokens_kept: 1,
                });
            }
        }
        actions
    }
}

/// Binary spray-and-wait: a message starts with `L` copy tokens; a carrier
/// with more than one token hands half to any peer missing the message, and
/// with one token left waits for the destination (Spyropoulos et al.).
#[derive(Debug, Clone)]
pub struct SprayAndWait {
    initial_copies: u32,
}

impl Default for SprayAndWait {
    fn default() -> Self {
        SprayAndWait::new(8)
    }
}

impl SprayAndWait {
    /// Creates the protocol with `initial_copies` tokens per message.
    ///
    /// # Panics
    ///
    /// Panics if `initial_copies` is zero.
    pub fn new(initial_copies: u32) -> Self {
        assert!(initial_copies > 0, "need at least one copy");
        SprayAndWait { initial_copies }
    }
}

impl RoutingProtocol for SprayAndWait {
    fn name(&self) -> &'static str {
        "spray-and-wait"
    }

    fn initial_tokens(&self) -> u32 {
        self.initial_copies
    }

    fn on_contact(
        &mut self,
        a: NodeId,
        b: NodeId,
        view: &ContactView<'_>,
        _now: SimTime,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut side = |from: NodeId, to: NodeId, mine: &Buffer, theirs: &Buffer| {
            for copy in mine.iter() {
                if theirs.contains(copy.message.id()) {
                    continue;
                }
                if copy.message.dst() == to {
                    actions.push(Action::Forward {
                        id: copy.message.id(),
                        from,
                    });
                } else if copy.tokens > 1 {
                    let give = copy.tokens / 2;
                    actions.push(Action::Replicate {
                        id: copy.message.id(),
                        from,
                        tokens_to_peer: give,
                        tokens_kept: copy.tokens - give,
                    });
                }
            }
        };
        side(a, b, view.a, view.b);
        side(b, a, view.b, view.a);
        actions
    }
}

/// An exponentially-smoothed estimator of per-item availability, the model
/// behind diffusion-driven proactive replication (after Napoli, Anceaume,
/// et al., *Improving files availability for BitTorrent using a diffusion
/// model*).
///
/// Each observation is the fraction of currently-connected peers holding an
/// item; the estimate diffuses toward it with weight `alpha`. Items whose
/// estimate sits below `threshold` are scarce and worth replicating
/// proactively. The helper is deliberately protocol-agnostic — `mbt-core`'s
/// `DiffuseRep` variant drives it with clique file catalogs.
///
/// # Example
///
/// ```
/// use dtn_routing::AvailabilityDiffusion;
///
/// let d = AvailabilityDiffusion::new(0.5, 0.35);
/// let estimate = d.update(0.0, 1.0); // first sighting: everyone has it
/// assert!((estimate - 0.5).abs() < 1e-12);
/// assert!(!d.is_scarce(estimate));
/// assert!(d.is_scarce(d.update(estimate, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityDiffusion {
    alpha: f64,
    threshold: f64,
}

impl AvailabilityDiffusion {
    /// Creates the estimator with smoothing weight `alpha` and scarcity
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` ∈ (0, 1] and `threshold` ∈ [0, 1].
    pub fn new(alpha: f64, threshold: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "bad alpha");
        assert!((0.0..=1.0).contains(&threshold), "bad threshold");
        AvailabilityDiffusion { alpha, threshold }
    }

    /// The smoothing weight of the newest observation.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The scarcity threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Diffuses `estimate` toward the newly `observed` availability.
    pub fn update(&self, estimate: f64, observed: f64) -> f64 {
        estimate + self.alpha * (observed - estimate)
    }

    /// True if an item with this availability estimate should be replicated
    /// proactively.
    pub fn is_scarce(&self, estimate: f64) -> bool {
        estimate < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn msg(id: u64, src: u32, dst: u32) -> Message {
        Message::new(id, n(src), n(dst), SimTime::ZERO, None)
    }

    fn buf_with(messages: &[(u64, u32, u32, u32)]) -> Buffer {
        let mut b = Buffer::unbounded();
        for &(id, src, dst, tokens) in messages {
            b.insert(msg(id, src, dst), tokens);
        }
        b
    }

    #[test]
    fn epidemic_copies_everything_missing() {
        let a = buf_with(&[(1, 0, 5, 1), (2, 0, 6, 1)]);
        let b = buf_with(&[(2, 0, 6, 1), (3, 1, 7, 1)]);
        let mut p = Epidemic::new();
        let actions = p.on_contact(n(0), n(1), &ContactView { a: &a, b: &b }, SimTime::ZERO);
        assert_eq!(actions.len(), 2); // 1 goes a→b, 3 goes b→a; 2 is shared.
        assert!(actions.contains(&Action::Replicate {
            id: MessageId(1),
            from: n(0),
            tokens_to_peer: 1,
            tokens_kept: 1
        }));
        assert!(actions.contains(&Action::Replicate {
            id: MessageId(3),
            from: n(1),
            tokens_to_peer: 1,
            tokens_kept: 1
        }));
    }

    #[test]
    fn direct_delivery_only_to_destination() {
        let a = buf_with(&[(1, 0, 1, 1), (2, 0, 9, 1)]);
        let b = Buffer::unbounded();
        let mut p = DirectDelivery::new();
        let actions = p.on_contact(n(0), n(1), &ContactView { a: &a, b: &b }, SimTime::ZERO);
        assert_eq!(
            actions,
            vec![Action::Forward {
                id: MessageId(1),
                from: n(0)
            }]
        );
    }

    #[test]
    fn prophet_reinforces_and_ages() {
        let mut p = Prophet::new();
        let empty = Buffer::unbounded();
        p.on_contact(
            n(0),
            n(1),
            &ContactView {
                a: &empty,
                b: &empty,
            },
            SimTime::from_secs(0),
        );
        let fresh = p.predictability(n(0), n(1));
        assert!((fresh - 0.75).abs() < 1e-9);
        // A day later the predictability has aged below its fresh value.
        p.on_contact(
            n(0),
            n(2),
            &ContactView {
                a: &empty,
                b: &empty,
            },
            SimTime::from_days(1),
        );
        assert!(p.predictability(n(0), n(1)) < fresh);
        // Repeated encounters push toward 1.
        for _ in 0..10 {
            p.reinforce(n(0), n(1));
        }
        assert!(p.predictability(n(0), n(1)) > 0.95);
    }

    #[test]
    fn prophet_transitivity_builds_indirect_predictability() {
        let mut p = Prophet::new();
        let empty = Buffer::unbounded();
        // b meets dst often, then a meets b: a gains predictability for dst.
        for t in 0..3 {
            p.on_contact(
                n(1),
                n(2),
                &ContactView {
                    a: &empty,
                    b: &empty,
                },
                SimTime::from_secs(t * 10),
            );
        }
        p.on_contact(
            n(0),
            n(1),
            &ContactView {
                a: &empty,
                b: &empty,
            },
            SimTime::from_secs(100),
        );
        assert!(p.predictability(n(0), n(2)) > 0.0);
        assert!(p.predictability(n(0), n(2)) < p.predictability(n(1), n(2)));
    }

    #[test]
    fn prophet_forwards_to_better_carrier() {
        let mut p = Prophet::new();
        let empty = Buffer::unbounded();
        // b frequently meets node 5.
        for t in 0..3 {
            p.on_contact(
                n(1),
                n(5),
                &ContactView {
                    a: &empty,
                    b: &empty,
                },
                SimTime::from_secs(t),
            );
        }
        let a = buf_with(&[(1, 0, 5, 1)]);
        let b = Buffer::unbounded();
        let actions = p.on_contact(
            n(0),
            n(1),
            &ContactView { a: &a, b: &b },
            SimTime::from_secs(10),
        );
        assert!(actions.iter().any(|act| matches!(
            act,
            Action::Replicate { id: MessageId(1), from, .. } if *from == n(0)
        )));
    }

    #[test]
    fn prophet_keeps_message_when_self_is_better() {
        let mut p = Prophet::new();
        let empty = Buffer::unbounded();
        // a (node 0) frequently meets the destination, b never has.
        for t in 0..3 {
            p.on_contact(
                n(0),
                n(5),
                &ContactView {
                    a: &empty,
                    b: &empty,
                },
                SimTime::from_secs(t),
            );
        }
        let a = buf_with(&[(1, 0, 5, 1)]);
        let b = Buffer::unbounded();
        let actions = p.on_contact(
            n(0),
            n(1),
            &ContactView { a: &a, b: &b },
            SimTime::from_secs(10),
        );
        assert!(actions.is_empty(), "worse carrier must not receive a copy");
    }

    #[test]
    fn spray_splits_tokens_binary() {
        let a = buf_with(&[(1, 0, 9, 8)]);
        let b = Buffer::unbounded();
        let mut p = SprayAndWait::new(8);
        let actions = p.on_contact(n(0), n(1), &ContactView { a: &a, b: &b }, SimTime::ZERO);
        assert_eq!(
            actions,
            vec![Action::Replicate {
                id: MessageId(1),
                from: n(0),
                tokens_to_peer: 4,
                tokens_kept: 4
            }]
        );
    }

    #[test]
    fn spray_waits_with_single_token() {
        let a = buf_with(&[(1, 0, 9, 1)]);
        let b = Buffer::unbounded();
        let mut p = SprayAndWait::new(8);
        let actions = p.on_contact(n(0), n(1), &ContactView { a: &a, b: &b }, SimTime::ZERO);
        assert!(
            actions.is_empty(),
            "wait phase: no relay to non-destination"
        );
    }

    #[test]
    fn spray_always_delivers_to_destination() {
        let a = buf_with(&[(1, 0, 1, 1)]);
        let b = Buffer::unbounded();
        let mut p = SprayAndWait::new(8);
        let actions = p.on_contact(n(0), n(1), &ContactView { a: &a, b: &b }, SimTime::ZERO);
        assert_eq!(
            actions,
            vec![Action::Forward {
                id: MessageId(1),
                from: n(0)
            }]
        );
    }

    #[test]
    fn initial_tokens_per_protocol() {
        assert_eq!(Epidemic::new().initial_tokens(), 1);
        assert_eq!(SprayAndWait::new(16).initial_tokens(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn spray_rejects_zero_copies() {
        let _ = SprayAndWait::new(0);
    }

    #[test]
    #[should_panic(expected = "bad gamma")]
    fn prophet_rejects_bad_gamma() {
        let _ = Prophet::with_params(0.75, 0.25, 1.5, 30.0);
    }

    #[test]
    fn diffusion_converges_to_observation() {
        let d = AvailabilityDiffusion::new(0.5, 0.35);
        let mut estimate = 0.0;
        for _ in 0..20 {
            estimate = d.update(estimate, 0.8);
        }
        assert!((estimate - 0.8).abs() < 1e-3, "{estimate}");
        assert!(!d.is_scarce(estimate));
        assert!(d.is_scarce(0.3));
    }

    #[test]
    #[should_panic(expected = "bad alpha")]
    fn diffusion_rejects_zero_alpha() {
        let _ = AvailabilityDiffusion::new(0.0, 0.5);
    }
}
