//! Routing simulation over a contact trace.

use std::collections::BTreeMap;

use dtn_trace::{ContactTrace, NodeId, SimDuration, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::buffer::{Buffer, DropPolicy};
use crate::message::{Message, MessageId};
use crate::protocols::{Action, ContactView, RoutingProtocol};

/// Outcome of a routing simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Messages created.
    pub created: u64,
    /// Messages delivered to their destinations.
    pub delivered: u64,
    /// Delivered ÷ created.
    pub delivery_ratio: f64,
    /// Mean delivery delay in seconds over delivered messages.
    pub mean_delay_secs: Option<f64>,
    /// Median delivery delay in seconds over delivered messages.
    pub median_delay_secs: Option<f64>,
    /// Total transmissions (replications + forwards).
    pub transmissions: u64,
    /// Transmissions per delivered message (∞-free: `None` when nothing
    /// delivered).
    pub overhead: Option<f64>,
}

/// Drives a [`RoutingProtocol`] over a [`ContactTrace`].
///
/// Clique contacts are decomposed into their node pairs (in deterministic
/// order); messages are injected at their creation times; expired messages
/// are pruned from buffers as the clock advances.
#[derive(Debug)]
pub struct RoutingSim<'a, P> {
    trace: &'a ContactTrace,
    protocol: P,
    buffer_capacity: Option<usize>,
    drop_policy: DropPolicy,
    transfers_per_contact: Option<usize>,
}

impl<'a, P: RoutingProtocol> RoutingSim<'a, P> {
    /// Creates a simulation of `protocol` over `trace` with unbounded
    /// buffers and unbounded per-contact transfers.
    pub fn new(trace: &'a ContactTrace, protocol: P) -> Self {
        RoutingSim {
            trace,
            protocol,
            buffer_capacity: None,
            drop_policy: DropPolicy::Oldest,
            transfers_per_contact: None,
        }
    }

    /// Bounds every node's buffer to `capacity` messages.
    pub fn buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = Some(capacity);
        self
    }

    /// Sets the drop policy used with bounded buffers (default: drop-oldest).
    pub fn drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Bounds the number of transfers applied per contact (models contact
    /// length), truncating the protocol's action list.
    pub fn transfers_per_contact(mut self, n: usize) -> Self {
        self.transfers_per_contact = Some(n);
        self
    }

    /// Runs the simulation with the given messages; returns the report.
    pub fn run(mut self, mut messages: Vec<Message>) -> RoutingReport {
        messages.sort_by_key(|m| (m.created(), m.id()));
        let id_space = self.trace.id_space();
        let mk_buffer = || match self.buffer_capacity {
            Some(cap) => Buffer::new(cap, self.drop_policy),
            None => Buffer::unbounded(),
        };
        let mut buffers: Vec<Buffer> = (0..id_space).map(|_| mk_buffer()).collect();
        let mut delivered_at: BTreeMap<MessageId, SimTime> = BTreeMap::new();
        let mut created_time: BTreeMap<MessageId, SimTime> = BTreeMap::new();
        let mut transmissions = 0u64;
        let initial_tokens = self.protocol.initial_tokens();

        let mut pending = messages.into_iter().peekable();
        let inject =
            |buffers: &mut Vec<Buffer>,
             created_time: &mut BTreeMap<MessageId, SimTime>,
             delivered_at: &mut BTreeMap<MessageId, SimTime>,
             now: SimTime,
             pending: &mut std::iter::Peekable<std::vec::IntoIter<Message>>| {
                while pending.peek().is_some_and(|m| m.created() <= now) {
                    let m = pending.next().expect("peeked");
                    created_time.insert(m.id(), m.created());
                    if m.src() == m.dst() {
                        delivered_at.insert(m.id(), m.created());
                        continue;
                    }
                    if m.src().index() < buffers.len() {
                        buffers[m.src().index()].insert(m.clone(), initial_tokens);
                    }
                }
            };

        for contact in self.trace.iter() {
            let now = contact.start();
            inject(
                &mut buffers,
                &mut created_time,
                &mut delivered_at,
                now,
                &mut pending,
            );
            for pair in contact.pairs() {
                let (a, b) = pair;
                if a.index() >= buffers.len() || b.index() >= buffers.len() {
                    continue;
                }
                buffers[a.index()].prune_expired(now);
                buffers[b.index()].prune_expired(now);
                let actions = {
                    let view = ContactView {
                        a: &buffers[a.index()],
                        b: &buffers[b.index()],
                    };
                    self.protocol.on_contact(a, b, &view, now)
                };
                let limit = self.transfers_per_contact.unwrap_or(usize::MAX);
                for action in actions.into_iter().take(limit) {
                    transmissions +=
                        apply_action(&mut buffers, a, b, action, now, &mut delivered_at);
                }
            }
        }
        // Messages created after the last contact still count as created.
        let horizon = self.trace.end_time().unwrap_or(SimTime::ZERO);
        inject(
            &mut buffers,
            &mut created_time,
            &mut delivered_at,
            horizon.saturating_add(SimDuration::from_days(10_000)),
            &mut pending,
        );

        let created = created_time.len() as u64;
        let delivered = delivered_at.len() as u64;
        let mut delays: dtn_sim::histogram::DelayHistogram = delivered_at
            .iter()
            .filter_map(|(id, &at)| {
                created_time
                    .get(id)
                    .and_then(|&c| at.checked_duration_since(c))
            })
            .collect();
        RoutingReport {
            protocol: self.protocol.name(),
            created,
            delivered,
            delivery_ratio: if created == 0 {
                0.0
            } else {
                delivered as f64 / created as f64
            },
            mean_delay_secs: delays.mean_secs(),
            median_delay_secs: delays.median().map(|d| d.as_secs() as f64),
            transmissions,
            overhead: if delivered == 0 {
                None
            } else {
                Some(transmissions as f64 / delivered as f64)
            },
        }
    }
}

/// Applies one action; returns 1 if a transmission happened, 0 otherwise.
fn apply_action(
    buffers: &mut [Buffer],
    a: NodeId,
    b: NodeId,
    action: Action,
    now: SimTime,
    delivered_at: &mut BTreeMap<MessageId, SimTime>,
) -> u64 {
    let (from, id, forward, tokens_to_peer, tokens_kept) = match action {
        Action::Replicate {
            id,
            from,
            tokens_to_peer,
            tokens_kept,
        } => (from, id, false, tokens_to_peer, tokens_kept),
        Action::Forward { id, from } => (from, id, true, 1, 0),
    };
    let to = if from == a { b } else { a };
    let Some(copy) = buffers[from.index()].get(id).cloned() else {
        return 0;
    };
    let message = copy.message.clone();
    if message.is_expired(now) {
        buffers[from.index()].remove(id);
        return 0;
    }
    let stored = buffers[to.index()].insert(message.clone(), tokens_to_peer);
    if !stored {
        return 0;
    }
    if forward {
        buffers[from.index()].remove(id);
    } else if let Some(mine) = buffers[from.index()].get_mut(id) {
        mine.tokens = tokens_kept;
    }
    if message.dst() == to {
        delivered_at.entry(id).or_insert(now);
    }
    1
}

/// Generates `count` uniform unicast messages among `nodes`, with creation
/// times uniform in `[0, horizon)` and the given TTL, deterministically from
/// `rng`.
///
/// # Panics
///
/// Panics if fewer than two nodes are given.
pub fn uniform_messages<R: Rng>(
    nodes: &[NodeId],
    count: u64,
    horizon: SimTime,
    ttl: Option<SimDuration>,
    rng: &mut R,
) -> Vec<Message> {
    assert!(nodes.len() >= 2, "need at least two nodes for unicast");
    (0..count)
        .map(|i| {
            let src = *nodes.choose(rng).expect("non-empty");
            let dst = loop {
                let d = *nodes.choose(rng).expect("non-empty");
                if d != src {
                    break d;
                }
            };
            let created = SimTime::from_secs(rng.gen_range(0..horizon.as_secs().max(1)));
            Message::new(i, src, dst, created, ttl.map(|t| created + t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{DirectDelivery, Epidemic, Prophet, SprayAndWait};
    use dtn_trace::Contact;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    fn chain_trace() -> ContactTrace {
        // 0-1 at t=10, 1-2 at t=20, 2-3 at t=30.
        vec![pc(0, 1, 10, 15), pc(1, 2, 20, 25), pc(2, 3, 30, 35)]
            .into_iter()
            .collect()
    }

    fn msg_0_to_3() -> Vec<Message> {
        vec![Message::new(
            0,
            NodeId::new(0),
            NodeId::new(3),
            SimTime::ZERO,
            None,
        )]
    }

    #[test]
    fn epidemic_delivers_along_chain() {
        let trace = chain_trace();
        let r = RoutingSim::new(&trace, Epidemic::new()).run(msg_0_to_3());
        assert_eq!(r.delivered, 1);
        assert_eq!(r.delivery_ratio, 1.0);
        assert_eq!(r.mean_delay_secs, Some(30.0));
        assert_eq!(r.transmissions, 3);
        assert_eq!(r.protocol, "epidemic");
    }

    #[test]
    fn direct_delivery_needs_a_direct_contact() {
        let trace = chain_trace();
        let r = RoutingSim::new(&trace, DirectDelivery::new()).run(msg_0_to_3());
        assert_eq!(r.delivered, 0, "0 never meets 3 directly");
        // With a direct contact it works, with exactly one transmission.
        let trace2: ContactTrace = vec![pc(0, 3, 40, 50)].into_iter().collect();
        let r2 = RoutingSim::new(&trace2, DirectDelivery::new()).run(msg_0_to_3());
        assert_eq!(r2.delivered, 1);
        assert_eq!(r2.transmissions, 1);
        assert_eq!(r2.overhead, Some(1.0));
    }

    #[test]
    fn spray_and_wait_bounded_copies() {
        // Star: node 0 meets 1..=5; only node 5 is the destination.
        let contacts: Vec<Contact> = (1..=5)
            .map(|i| pc(0, i, i as u64 * 10, i as u64 * 10 + 5))
            .collect();
        let trace: ContactTrace = contacts.into_iter().collect();
        let msgs = vec![Message::new(
            0,
            NodeId::new(0),
            NodeId::new(5),
            SimTime::ZERO,
            None,
        )];
        let r = RoutingSim::new(&trace, SprayAndWait::new(4)).run(msgs);
        assert_eq!(r.delivered, 1);
        // Tokens 4: gives 2, then 1; then wait-phase; plus the final direct
        // delivery ⇒ at most 4 transmissions, far fewer than epidemic's.
        assert!(r.transmissions <= 4, "transmissions {}", r.transmissions);
    }

    #[test]
    fn prophet_runs_and_delivers_on_repeat_mobility() {
        // Node 1 shuttles between 0 and 2 repeatedly.
        let mut contacts = Vec::new();
        for round in 0..5u64 {
            contacts.push(pc(0, 1, round * 100 + 10, round * 100 + 15));
            contacts.push(pc(1, 2, round * 100 + 50, round * 100 + 55));
        }
        let trace: ContactTrace = contacts.into_iter().collect();
        let msgs = vec![Message::new(
            0,
            NodeId::new(0),
            NodeId::new(2),
            SimTime::from_secs(120),
            None,
        )];
        let r = RoutingSim::new(&trace, Prophet::new()).run(msgs);
        assert_eq!(r.delivered, 1, "prophet should route through the shuttle");
    }

    #[test]
    fn ttl_prevents_late_delivery() {
        let trace = chain_trace();
        let msgs = vec![Message::new(
            0,
            NodeId::new(0),
            NodeId::new(3),
            SimTime::ZERO,
            Some(SimTime::from_secs(25)), // expires before the 2-3 contact
        )];
        let r = RoutingSim::new(&trace, Epidemic::new()).run(msgs);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn transfer_budget_limits_transmissions() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let msgs: Vec<Message> = (0..10)
            .map(|i| Message::new(i, NodeId::new(0), NodeId::new(1), SimTime::ZERO, None))
            .collect();
        let r = RoutingSim::new(&trace, Epidemic::new())
            .transfers_per_contact(3)
            .run(msgs);
        assert_eq!(r.transmissions, 3);
        assert_eq!(r.delivered, 3);
    }

    #[test]
    fn bounded_buffers_cap_copies() {
        let trace: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let msgs: Vec<Message> = (0..10)
            .map(|i| Message::new(i, NodeId::new(0), NodeId::new(9), SimTime::ZERO, None))
            .collect();
        let r = RoutingSim::new(&trace, Epidemic::new())
            .buffer_capacity(4)
            .run(msgs);
        // Node 0's own buffer held at most 4, so at most 4 transfers.
        assert!(r.transmissions <= 4);
    }

    #[test]
    fn clique_contacts_decompose_into_pairs() {
        let clique = Contact::clique(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        )
        .unwrap();
        let trace: ContactTrace = vec![clique].into_iter().collect();
        let msgs = vec![Message::new(
            0,
            NodeId::new(0),
            NodeId::new(2),
            SimTime::ZERO,
            None,
        )];
        let r = RoutingSim::new(&trace, Epidemic::new()).run(msgs);
        assert_eq!(r.delivered, 1);
    }

    #[test]
    fn self_addressed_messages_deliver_instantly() {
        let trace = chain_trace();
        let msgs = vec![Message::new(
            0,
            NodeId::new(1),
            NodeId::new(1),
            SimTime::ZERO,
            None,
        )];
        let r = RoutingSim::new(&trace, Epidemic::new()).run(msgs);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.transmissions, 0);
    }

    #[test]
    fn uniform_messages_are_valid() {
        use rand::SeedableRng;
        let nodes: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let msgs = uniform_messages(
            &nodes,
            50,
            SimTime::from_secs(1000),
            Some(SimDuration::from_secs(500)),
            &mut rng,
        );
        assert_eq!(msgs.len(), 50);
        for m in &msgs {
            assert_ne!(m.src(), m.dst());
            assert!(m.created().as_secs() < 1000);
            assert_eq!(
                m.expires().unwrap(),
                m.created() + SimDuration::from_secs(500)
            );
        }
    }

    #[test]
    fn report_with_no_messages() {
        let trace = chain_trace();
        let r = RoutingSim::new(&trace, Epidemic::new()).run(Vec::new());
        assert_eq!(r.created, 0);
        assert_eq!(r.delivery_ratio, 0.0);
        assert_eq!(r.overhead, None);
        assert_eq!(r.mean_delay_secs, None);
    }
}
