//! Unicast messages routed through the DTN.

use std::fmt;

use dtn_trace::{NodeId, SimTime};

/// Message identifier, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A unicast message: source, destination, creation time, optional expiry.
///
/// # Example
///
/// ```
/// use dtn_routing::Message;
/// use dtn_trace::{NodeId, SimTime};
///
/// let m = Message::new(1, NodeId::new(0), NodeId::new(5), SimTime::from_secs(10), None);
/// assert_eq!(m.src(), NodeId::new(0));
/// assert_eq!(m.dst(), NodeId::new(5));
/// assert!(!m.is_expired(SimTime::from_secs(1_000_000)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    id: MessageId,
    src: NodeId,
    dst: NodeId,
    created: SimTime,
    expires: Option<SimTime>,
}

impl Message {
    /// Creates a message.
    pub fn new(
        id: u64,
        src: NodeId,
        dst: NodeId,
        created: SimTime,
        expires: Option<SimTime>,
    ) -> Self {
        Message {
            id: MessageId(id),
            src,
            dst,
            created,
            expires,
        }
    }

    /// The message id.
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// The originating node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Creation instant.
    pub fn created(&self) -> SimTime {
        self.created
    }

    /// Expiry instant, if any.
    pub fn expires(&self) -> Option<SimTime> {
        self.expires
    }

    /// True if the message has expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires.is_some_and(|e| now >= e)
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}->{}]", self.id, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = Message::new(
            3,
            NodeId::new(1),
            NodeId::new(2),
            SimTime::from_secs(5),
            None,
        );
        assert_eq!(m.id(), MessageId(3));
        assert_eq!(m.src(), NodeId::new(1));
        assert_eq!(m.dst(), NodeId::new(2));
        assert_eq!(m.created(), SimTime::from_secs(5));
        assert_eq!(m.expires(), None);
    }

    #[test]
    fn expiry() {
        let m = Message::new(
            0,
            NodeId::new(0),
            NodeId::new(1),
            SimTime::ZERO,
            Some(SimTime::from_secs(100)),
        );
        assert!(!m.is_expired(SimTime::from_secs(99)));
        assert!(m.is_expired(SimTime::from_secs(100)));
    }

    #[test]
    fn display() {
        let m = Message::new(7, NodeId::new(0), NodeId::new(1), SimTime::ZERO, None);
        assert_eq!(m.to_string(), "m7[n0->n1]");
        assert_eq!(MessageId(7).to_string(), "m7");
    }
}
