//! Property-based tests for the routing protocols: conservation and
//! dominance laws that must hold on any trace and workload.

use proptest::prelude::*;

use dtn_routing::protocols::{DirectDelivery, Epidemic, Prophet, SprayAndWait};
use dtn_routing::sim::{uniform_messages, RoutingSim};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{ContactTrace, SimDuration, SimTime};

fn small_trace(seed: u64) -> ContactTrace {
    DieselNetConfig::new(10, 3).seed(seed).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn epidemic_dominates_everyone_on_delivery(seed in 0u64..500) {
        let trace = small_trace(seed);
        prop_assume!(trace.node_count() >= 2);
        let nodes = trace.nodes();
        let horizon = trace.end_time().unwrap_or(SimTime::from_secs(1));
        let mut rng = dtn_sim::rng::stream(seed, "routing-messages");
        let msgs = uniform_messages(&nodes, 30, horizon, None, &mut rng);

        let epidemic = RoutingSim::new(&trace, Epidemic::new()).run(msgs.clone());
        let direct = RoutingSim::new(&trace, DirectDelivery::new()).run(msgs.clone());
        let prophet = RoutingSim::new(&trace, Prophet::new()).run(msgs.clone());
        let spray = RoutingSim::new(&trace, SprayAndWait::new(6)).run(msgs);

        // Epidemic is the delivery upper bound among these protocols.
        for r in [&direct, &prophet, &spray] {
            prop_assert!(
                epidemic.delivered >= r.delivered,
                "epidemic {} < {} {}", epidemic.delivered, r.protocol, r.delivered
            );
        }
        // Direct delivery never spends more than one transmission per delivery.
        prop_assert_eq!(direct.transmissions, direct.delivered);
    }

    #[test]
    fn delivery_counts_bounded_by_created(seed in 0u64..500) {
        let trace = small_trace(seed);
        prop_assume!(trace.node_count() >= 2);
        let nodes = trace.nodes();
        let horizon = trace.end_time().unwrap_or(SimTime::from_secs(1));
        let mut rng = dtn_sim::rng::stream(seed, "routing-messages-2");
        let msgs = uniform_messages(&nodes, 25, horizon, Some(SimDuration::from_days(1)), &mut rng);
        for report in [
            RoutingSim::new(&trace, Epidemic::new()).run(msgs.clone()),
            RoutingSim::new(&trace, DirectDelivery::new()).run(msgs.clone()),
            RoutingSim::new(&trace, Prophet::new()).run(msgs.clone()),
            RoutingSim::new(&trace, SprayAndWait::new(4)).run(msgs.clone()),
        ] {
            prop_assert_eq!(report.created, 25);
            prop_assert!(report.delivered <= report.created);
            prop_assert!(report.delivery_ratio <= 1.0 + 1e-9);
            if let Some(delay) = report.mean_delay_secs {
                prop_assert!(delay >= 0.0);
            }
        }
    }

    #[test]
    fn spray_transmissions_bounded_by_copy_budget(seed in 0u64..500, copies in 1u32..8) {
        let trace = small_trace(seed);
        prop_assume!(trace.node_count() >= 2);
        let nodes = trace.nodes();
        let horizon = trace.end_time().unwrap_or(SimTime::from_secs(1));
        let mut rng = dtn_sim::rng::stream(seed, "routing-messages-3");
        let count = 20u64;
        let msgs = uniform_messages(&nodes, count, horizon, None, &mut rng);
        let r = RoutingSim::new(&trace, SprayAndWait::new(copies)).run(msgs);
        // Binary spray makes at most `copies - 1` spray transmissions plus
        // one wait-phase delivery per message.
        prop_assert!(
            r.transmissions <= count * (copies as u64),
            "transmissions {} exceed budget {}", r.transmissions, count * copies as u64
        );
    }

    #[test]
    fn tighter_transfer_budget_never_increases_transmissions(seed in 0u64..500) {
        let trace = small_trace(seed);
        prop_assume!(trace.node_count() >= 2);
        let nodes = trace.nodes();
        let horizon = trace.end_time().unwrap_or(SimTime::from_secs(1));
        let mut rng = dtn_sim::rng::stream(seed, "routing-messages-4");
        let msgs = uniform_messages(&nodes, 20, horizon, None, &mut rng);
        let tight = RoutingSim::new(&trace, Epidemic::new())
            .transfers_per_contact(1)
            .run(msgs.clone());
        let loose = RoutingSim::new(&trace, Epidemic::new()).run(msgs);
        prop_assert!(tight.transmissions <= loose.transmissions);
        prop_assert!(tight.delivered <= loose.delivered);
    }
}
